#include "serve/batcher.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <utility>

#include "common/check.h"
#include "common/trace.h"

namespace sgcl {
namespace serve {
namespace {

int64_t TotalNodes(const std::vector<Graph>& graphs) {
  int64_t total = 0;
  for (const Graph& g : graphs) total += g.num_nodes();
  return total;
}

}  // namespace

// One submitted request awaiting execution. Lives on the Submit caller's
// stack: Submit blocks on the future until the dispatch thread fulfils
// the promise (or Stop fails it), so the pointer in queue_ never
// dangles. After set_value/set_exception the dispatch thread must not
// touch the Pending again.
struct MicroBatcher::Pending {
  const std::vector<Graph>* graphs;
  int64_t total_nodes;
  std::chrono::steady_clock::time_point enqueue_time;
  // Submitter's ambient TraceContext (the request's root span), captured
  // at enqueue so the dispatch thread can attribute this request's
  // queue_wait / batch_form phases to its trace.
  TraceContext trace_ctx;
  int64_t enqueue_us = 0;  // collector-epoch µs, only set when traced
  // Stamped by RunBatch before the promise resolves (the fulfilment is
  // the synchronization point): the submitter records its serve/forward
  // span from run_start_us to its own wake-up, so result delivery and
  // scheduler latency are attributed to the trace instead of appearing
  // as a gap between forward and encode. The span id is pre-allocated on
  // the dispatch thread so serve/infer_* spans nest under it.
  int64_t run_start_us = 0;
  uint64_t forward_span_id = 0;
  std::promise<Result<std::vector<std::vector<float>>>> promise;
};

MicroBatcher::MicroBatcher(std::string name, const MicroBatcherOptions& options,
                           BatchFn fn)
    : name_(std::move(name)), options_(options), fn_(std::move(fn)) {
  SGCL_CHECK(options_.max_batch_graphs >= 1);
  SGCL_CHECK(options_.max_batch_nodes >= 1);
  SGCL_CHECK(options_.max_queue_requests >= 1);
  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::string prefix = "serve/" + name_ + "/";
  submitted_ = registry.GetCounter(prefix + "submitted");
  rejected_ = registry.GetCounter(prefix + "rejected");
  batches_ = registry.GetCounter(prefix + "batches");
  batch_graphs_ = registry.GetHistogram(prefix + "batch_graphs",
                                        {1, 2, 4, 8, 16, 32, 64, 128});
  batch_nodes_ = registry.GetHistogram(
      prefix + "batch_nodes", {16, 64, 256, 1024, 4096, 16384, 65536});
  queue_wait_us_ = registry.GetHistogram(
      prefix + "queue_wait_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000, 250000});
  queue_depth_ = registry.GetGauge(prefix + "queue_depth");
}

MicroBatcher::~MicroBatcher() { Stop(); }

Status MicroBatcher::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::InvalidArgument("MicroBatcher already running");
  running_ = true;
  stopping_ = false;
  dispatch_thread_ = std::thread([this] { DispatchLoop(); });
  return Status::OK();
}

void MicroBatcher::Stop() {
  std::vector<Pending*> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
    drained.assign(queue_.begin(), queue_.end());
    queue_.clear();
    queue_depth_->Set(0);
  }
  cv_.notify_all();
  for (Pending* p : drained) {
    p->promise.set_value(Status::Unavailable("batcher stopped"));
  }
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

int64_t MicroBatcher::batches_executed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_executed_;
}

Result<std::vector<std::vector<float>>> MicroBatcher::Submit(
    const std::vector<Graph>& graphs) {
  if (graphs.empty()) {
    return Status::InvalidArgument("Submit needs at least one graph");
  }
  Pending pending;
  pending.graphs = &graphs;
  pending.total_nodes = TotalNodes(graphs);
  pending.enqueue_time = std::chrono::steady_clock::now();
  pending.trace_ctx = CurrentTraceContext();
  if (pending.trace_ctx.valid()) {
    pending.enqueue_us = TraceCollector::Global().NowUs();
  }
  auto future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_ || stopping_) {
      rejected_->Increment();
      return Status::Unavailable("batcher is not running");
    }
    if (static_cast<int64_t>(queue_.size()) >= options_.max_queue_requests) {
      rejected_->Increment();
      return Status::Unavailable(
          "admission queue full (" +
          std::to_string(options_.max_queue_requests) + " requests)");
    }
    queue_.push_back(&pending);
    queue_depth_->Set(static_cast<double>(queue_.size()));
    submitted_->Increment();
  }
  cv_.notify_one();
  Result<std::vector<std::vector<float>>> result = future.get();
  if (pending.trace_ctx.valid() && pending.run_start_us > 0) {
    // The request's forward phase, closed at wake-up: the model time is
    // the nested serve/infer_* span, the rest is delivery + scheduling.
    RecordManualSpan("serve/forward", pending.trace_ctx,
                     pending.run_start_us, TraceCollector::Global().NowUs(),
                     pending.forward_span_id);
  }
  return result;
}

void MicroBatcher::DispatchLoop() {
  for (;;) {
    std::vector<Pending*> batch;
    int64_t batch_graphs = 0;
    int64_t batch_nodes = 0;
    int64_t form_start_us = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      form_start_us = TraceCollector::Global().NowUs();

      // FILLING: admit the oldest request unconditionally, then keep
      // admitting while the caps hold — waiting out the timeout window
      // when the queue runs dry early.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(options_.batch_timeout_us);
      for (;;) {
        while (!queue_.empty()) {
          Pending* front = queue_.front();
          const int64_t graphs =
              static_cast<int64_t>(front->graphs->size());
          const bool fits =
              batch.empty() ||
              (batch_graphs + graphs <= options_.max_batch_graphs &&
               batch_nodes + front->total_nodes <= options_.max_batch_nodes);
          if (!fits) break;
          queue_.pop_front();
          batch.push_back(front);
          batch_graphs += graphs;
          batch_nodes += front->total_nodes;
          if (batch_graphs >= options_.max_batch_graphs ||
              batch_nodes >= options_.max_batch_nodes) {
            break;
          }
        }
        const bool full = batch_graphs >= options_.max_batch_graphs ||
                          batch_nodes >= options_.max_batch_nodes ||
                          (!queue_.empty());  // head does not fit: close
        if (full || stopping_ || options_.batch_timeout_us <= 0) break;
        if (cv_.wait_until(lock, deadline, [this] {
              return stopping_ || !queue_.empty();
            })) {
          if (stopping_) break;
          continue;  // more work arrived within the window
        }
        break;  // timeout: ship the partial batch
      }
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
    if (!batch.empty()) RunBatch(std::move(batch), form_start_us);
  }
}

void MicroBatcher::RunBatch(std::vector<Pending*> batch,
                            int64_t form_start_us) {
  const auto now = std::chrono::steady_clock::now();
  std::vector<const Graph*> graphs;
  for (const Pending* p : batch) {
    queue_wait_us_->Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - p->enqueue_time)
            .count()));
    for (const Graph& g : *p->graphs) graphs.push_back(&g);
  }
  // Forward span ids are pre-allocated so spans recorded *inside* the
  // forward (inference_session) can nest under them; the forwards run
  // under the first traced request's context.
  const int64_t run_start_us = TraceCollector::Global().NowUs();
  std::vector<uint64_t> forward_span_ids(batch.size(), 0);
  TraceContext forward_ctx;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i]->trace_ctx.valid()) continue;
    forward_span_ids[i] = TraceRing::NextSpanId();
    if (!forward_ctx.valid()) {
      forward_ctx =
          TraceContext{batch[i]->trace_ctx.trace_id, forward_span_ids[i]};
    }
  }
  ScopedTraceContext forward_guard(forward_ctx);
  // The caps are hard limits on one fused forward, not just on batch
  // formation: formation admits the oldest request unconditionally, so a
  // single request larger than the caps reaches here intact and is split
  // into cap-sized forwards (a lone graph bigger than max_batch_nodes is
  // indivisible and runs alone). This is also what makes
  // --max-batch-graphs=1 an honest batch-size-1 baseline: every forward
  // sees exactly one graph no matter how requests arrived.
  std::vector<std::vector<float>> rows;
  rows.reserve(graphs.size());
  Status status = Status::OK();
  size_t begin = 0;
  while (begin < graphs.size() && status.ok()) {
    size_t end = begin;
    int64_t chunk_nodes = 0;
    while (end < graphs.size()) {
      const int64_t g_nodes = graphs[end]->num_nodes();
      if (end > begin &&
          (static_cast<int64_t>(end - begin) >= options_.max_batch_graphs ||
           chunk_nodes + g_nodes > options_.max_batch_nodes)) {
        break;
      }
      chunk_nodes += g_nodes;
      ++end;
    }
    const std::vector<const Graph*> chunk(graphs.begin() + begin,
                                          graphs.begin() + end);
    std::vector<std::vector<float>> chunk_rows;
    chunk_rows.reserve(chunk.size());
    status = fn_(chunk, &chunk_rows);
    if (status.ok() && chunk_rows.size() != chunk.size()) {
      status = Status::Internal(
          "batch function returned " + std::to_string(chunk_rows.size()) +
          " rows for " + std::to_string(chunk.size()) + " graphs");
    }
    if (status.ok()) {
      batch_graphs_->Observe(static_cast<double>(chunk.size()));
      batch_nodes_->Observe(static_cast<double>(chunk_nodes));
      // Count the forward before fulfilling any promise that depends on
      // it: a Submit caller may read batches_executed() the instant its
      // future resolves, and must see this forward included.
      batches_->Increment();
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++batches_executed_;
      }
      for (std::vector<float>& row : chunk_rows) rows.push_back(std::move(row));
    }
    begin = end;
  }
  // Attribute this batch's pre-execution phases to every traced request
  // before any promise resolves (the request root span closes on the
  // submitter's thread right after; spans arriving later would be
  // dropped), and stamp the forward timing so the submitter can close
  // its serve/forward span at wake-up.
  for (size_t i = 0; i < batch.size(); ++i) {
    Pending* p = batch[i];
    if (!p->trace_ctx.valid()) continue;
    const int64_t form_us = std::max(p->enqueue_us, form_start_us);
    RecordManualSpan("serve/queue_wait", p->trace_ctx, p->enqueue_us,
                     form_us);
    RecordManualSpan("serve/batch_form", p->trace_ctx, form_us,
                     run_start_us);
    p->run_start_us = run_start_us;
    p->forward_span_id = forward_span_ids[i];
  }
  size_t next_row = 0;
  for (Pending* p : batch) {
    const size_t count = p->graphs->size();
    if (!status.ok()) {
      p->promise.set_value(status);
      continue;
    }
    std::vector<std::vector<float>> slice(
        std::make_move_iterator(rows.begin() + next_row),
        std::make_move_iterator(rows.begin() + next_row + count));
    next_row += count;
    p->promise.set_value(std::move(slice));
  }
}

}  // namespace serve
}  // namespace sgcl
