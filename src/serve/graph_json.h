// JSON wire format for the embedding inference service.
//
// Request (POST /v1/embed and /v1/predict share it):
//   {"graphs": [{"num_nodes": N,
//                "features": [f_00, ..., f_0d, f_10, ...],   // N*feat_dim
//                "edges": [s0, d0, s1, d1, ...]}, ...]}      // undirected
//
// Responses:
//   /v1/embed   -> {"dim": D, "embeddings": [[e_0 ... e_D-1], ...]}
//   /v1/predict -> {"keep_probs": [[p_0 ... p_N-1], ...]}
//
// Parsing is strict: unknown shapes, out-of-range edge endpoints, and
// non-finite features are InvalidArgument with a message that names the
// offending graph, never a crash. Formatting uses %.9g — enough digits
// to round-trip float32 exactly, so a client can compare batched and
// unbatched responses bitwise.
#ifndef SGCL_SERVE_GRAPH_JSON_H_
#define SGCL_SERVE_GRAPH_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace sgcl {
namespace serve {

struct RequestLimits {
  int64_t max_graphs = 64;       // graphs per request
  int64_t max_total_nodes = 4096;  // summed over the request's graphs
};

// Parses a request body into graphs with `feat_dim` features per node.
Result<std::vector<Graph>> ParseGraphsRequest(const std::string& body,
                                              int64_t feat_dim,
                                              const RequestLimits& limits);

// One row of floats per graph ("embeddings" for /v1/embed with the
// trailing "dim", "keep_probs" for /v1/predict).
std::string FormatRowsResponse(const std::string& key,
                               const std::vector<std::vector<float>>& rows,
                               int64_t dim_or_negative);

}  // namespace serve
}  // namespace sgcl

#endif  // SGCL_SERVE_GRAPH_JSON_H_
