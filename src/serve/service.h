// The embedding inference service: HTTP endpoints wired through the
// dynamic micro-batcher into an InferenceSession.
//
// Endpoints (loopback only; see DESIGN.md §11 for the full table):
//   POST /v1/embed    graphs JSON -> pooled f_k graph embeddings
//   POST /v1/predict  graphs JSON -> per-node keep probabilities (f_q)
//   GET  /v1/info     model + limit metadata for clients/load tools
//   GET  /status      serving stats: per-endpoint latency quantiles,
//                     batch occupancy, queue depth, config
//   GET  /metrics     Prometheus text (shared diagnostics handler)
//   GET  /healthz     liveness (shared diagnostics handler)
//   GET  /v1/traces[/<id>]  sampled request span trees (shared handler)
//
// Error contract: malformed JSON / wrong shapes -> 400, unknown routes
// -> 404, oversized bodies -> 413 (all with a JSON error body); a full
// admission queue -> 503 with Retry-After. Handlers never touch the
// filesystem — checkpoints and datasets are loaded by the CLI before
// Start (enforced by lint rule sgcl-R7).
#ifndef SGCL_SERVE_SERVICE_H_
#define SGCL_SERVE_SERVICE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/http_server.h"
#include "serve/batcher.h"
#include "serve/graph_json.h"
#include "serve/inference_session.h"

namespace sgcl {
namespace serve {

struct ServeOptions {
  int http_port = 0;      // 0 = ephemeral (see ServeService::port())
  int http_threads = 4;   // keep-alive worker threads
  int idle_timeout_ms = 10000;
  size_t max_body_bytes = 4u << 20;
  MicroBatcherOptions batcher;  // shared by the embed and predict lanes
  RequestLimits limits;         // per-request graph/node caps
  // Retry-After value (seconds) attached to 503 overload responses.
  int retry_after_s = 1;
  // Request tracing: fraction of requests sampled into the global
  // TraceRing (deterministic every-Nth; 0 = off) and the ring's
  // capacity in traces. A sampled request's span tree is queryable at
  // /v1/traces/<id>; the id is echoed in an X-Sgcl-Trace response
  // header and stamped on latency-histogram exemplars.
  double trace_sample_rate = 0.0;
  int64_t trace_ring_size = 256;
};

class ServeService {
 public:
  // `model` must outlive the service and must not be trained while
  // serving. The optional *_override hooks replace the session-backed
  // batch functions — a test seam for overload/error injection; leave
  // them empty in production.
  ServeService(const SgclModel* model, const ServeOptions& options,
               BatchFn embed_override = nullptr,
               BatchFn predict_override = nullptr);
  ~ServeService();

  ServeService(const ServeService&) = delete;
  ServeService& operator=(const ServeService&) = delete;

  Status Start();
  void Stop();

  int port() const { return server_.port(); }
  bool running() const { return server_.running(); }
  const InferenceSession& session() const { return session_; }
  int64_t requests_served() const { return server_.requests_served(); }

  // The /status payload (also handy for the CLI's shutdown summary).
  std::string StatusJson() const;

 private:
  HttpResponse HandleGraphsRequest(const HttpRequest& request,
                                   MicroBatcher* batcher,
                                   const std::string& endpoint,
                                   const std::string& response_key,
                                   int64_t dim_or_negative);
  HttpResponse HandleInfo() const;

  const SgclModel* model_;
  ServeOptions options_;
  InferenceSession session_;
  std::unique_ptr<MicroBatcher> embed_batcher_;
  std::unique_ptr<MicroBatcher> predict_batcher_;
  HttpServer server_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace serve
}  // namespace sgcl

#endif  // SGCL_SERVE_SERVICE_H_
