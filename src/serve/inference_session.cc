#include "serve/inference_session.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/trace.h"
#include "graph/graph_batch.h"

namespace sgcl {
namespace serve {
namespace {

float StableSigmoid(float z) {
  // Split by sign so exp never overflows.
  if (z >= 0.0f) {
    const float e = std::exp(-z);
    return 1.0f / (1.0f + e);
  }
  const float e = std::exp(z);
  return e / (1.0f + e);
}

// Pools the [num_nodes, dim] node matrix into one row per graph segment
// (rows accumulated in ascending node order — deterministic and
// independent of how graphs were coalesced).
void PoolSegments(const float* nodes, const GraphBatch& batch, int64_t dim,
                  PoolingKind kind, std::vector<std::vector<float>>* rows) {
  for (int64_t g = 0; g < batch.num_graphs; ++g) {
    const int64_t begin = batch.node_offsets[g];
    const int64_t end = batch.node_offsets[g + 1];
    std::vector<float> row(static_cast<size_t>(dim), 0.0f);
    if (kind == PoolingKind::kMax && end > begin) {
      for (int64_t j = 0; j < dim; ++j) row[j] = nodes[begin * dim + j];
      for (int64_t v = begin + 1; v < end; ++v) {
        for (int64_t j = 0; j < dim; ++j) {
          row[j] = std::max(row[j], nodes[v * dim + j]);
        }
      }
    } else {
      for (int64_t v = begin; v < end; ++v) {
        for (int64_t j = 0; j < dim; ++j) row[j] += nodes[v * dim + j];
      }
      if (kind == PoolingKind::kMean && end > begin) {
        const float inv = 1.0f / static_cast<float>(end - begin);
        for (int64_t j = 0; j < dim; ++j) row[j] *= inv;
      }
    }
    rows->push_back(std::move(row));
  }
}

}  // namespace

InferenceSession::InferenceSession(const SgclModel* model)
    : model_(model),
      plan_k_(GinInferencePlan::Build(model->encoder_k())),
      plan_q_(GinInferencePlan::Build(model->encoder_q())) {}

int64_t InferenceSession::feat_dim() const {
  return model_->config().encoder.in_dim;
}

int64_t InferenceSession::embed_dim() const {
  return model_->config().encoder.hidden_dim;
}

Status InferenceSession::EmbedBatch(
    const std::vector<const Graph*>& graphs,
    std::vector<std::vector<float>>* rows) const {
  if (graphs.empty()) return Status::OK();
  SGCL_TRACE_SPAN("serve/infer_embed");
  const GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  const int64_t dim = embed_dim();
  if (plan_k_.valid()) {
    auto nodes = std::make_unique_for_overwrite<float[]>(
        static_cast<size_t>(batch.num_nodes * dim));
    plan_k_.EncodeBatch(batch, nodes.get());
    PoolSegments(nodes.get(), batch, dim, model_->config().encoder.pooling,
                 rows);
    return Status::OK();
  }
  // Tape fallback for non-GIN architectures (same block-diagonal
  // semantics, just slower).
  const Tensor pooled = model_->EmbedGraphs(graphs);
  for (int64_t g = 0; g < pooled.rows(); ++g) {
    rows->emplace_back(pooled.data() + g * dim, pooled.data() + (g + 1) * dim);
  }
  return Status::OK();
}

Status InferenceSession::PredictBatch(
    const std::vector<const Graph*>& graphs,
    std::vector<std::vector<float>>* rows) const {
  if (graphs.empty()) return Status::OK();
  SGCL_TRACE_SPAN("serve/infer_predict");
  const GraphBatch batch = GraphBatch::FromGraphPtrs(graphs);
  const int64_t dim = embed_dim();
  const Tensor& w = model_->prob_head().weight();  // [hidden, 1]
  if (w.rows() != dim) {
    return Status::Internal("probability head width mismatch");
  }
  auto emit = [&](const float* nodes) {
    for (int64_t g = 0; g < batch.num_graphs; ++g) {
      const int64_t begin = batch.node_offsets[g];
      const int64_t end = batch.node_offsets[g + 1];
      std::vector<float> row;
      row.reserve(static_cast<size_t>(end - begin));
      for (int64_t v = begin; v < end; ++v) {
        float z = 0.0f;
        for (int64_t j = 0; j < dim; ++j) {
          z += nodes[v * dim + j] * w.data()[j];
        }
        row.push_back(StableSigmoid(z));
      }
      rows->push_back(std::move(row));
    }
  };
  if (plan_q_.valid()) {
    auto nodes = std::make_unique_for_overwrite<float[]>(
        static_cast<size_t>(batch.num_nodes * dim));
    plan_q_.EncodeBatch(batch, nodes.get());
    emit(nodes.get());
    return Status::OK();
  }
  const Tensor h = model_->encoder_q().EncodeNodes(batch.features, batch);
  emit(h.data());
  return Status::OK();
}

}  // namespace serve
}  // namespace sgcl
