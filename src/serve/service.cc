#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/telemetry.h"
#include "common/trace.h"

namespace sgcl {
namespace serve {
namespace {

const std::vector<double>& LatencyBoundsUs() {
  static const std::vector<double> bounds = {100,   250,   500,    1000,
                                             2500,  5000,  10000,  25000,
                                             50000, 100000, 250000, 1000000};
  return bounds;
}

HttpResponse JsonError(int status, const Status& st) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = StrFormat("{\"error\":{\"code\":%d,\"message\":\"%s\"}}\n",
                            status, JsonEscape(st.message()).c_str());
  return response;
}

// Quantile summary for one histogram, as a JSON object fragment.
std::string HistogramJson(const MetricsSnapshot& snapshot,
                          const std::string& name) {
  const auto it = snapshot.histograms.find(name);
  if (it == snapshot.histograms.end() || it->second.count == 0) {
    return "{\"count\":0}";
  }
  const MetricsSnapshot::HistogramData& h = it->second;
  const double mean = h.sum / static_cast<double>(h.count);
  return StrFormat("{\"count\":%lld,\"mean\":%s,\"p50\":%s,\"p95\":%s,"
                   "\"p99\":%s}",
                   static_cast<long long>(h.count), JsonDouble(mean).c_str(),
                   JsonDouble(h.Quantile(0.50)).c_str(),
                   JsonDouble(h.Quantile(0.95)).c_str(),
                   JsonDouble(h.Quantile(0.99)).c_str());
}

int64_t CounterValue(const MetricsSnapshot& snapshot, const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

}  // namespace

ServeService::ServeService(const SgclModel* model, const ServeOptions& options,
                           BatchFn embed_override, BatchFn predict_override)
    : model_(model), options_(options), session_(model) {
  BatchFn embed_fn = std::move(embed_override);
  if (!embed_fn) {
    embed_fn = [this](const std::vector<const Graph*>& graphs,
                      std::vector<std::vector<float>>* rows) {
      return session_.EmbedBatch(graphs, rows);
    };
  }
  BatchFn predict_fn = std::move(predict_override);
  if (!predict_fn) {
    predict_fn = [this](const std::vector<const Graph*>& graphs,
                        std::vector<std::vector<float>>* rows) {
      return session_.PredictBatch(graphs, rows);
    };
  }
  embed_batcher_ = std::make_unique<MicroBatcher>("embed", options_.batcher,
                                                  std::move(embed_fn));
  predict_batcher_ = std::make_unique<MicroBatcher>(
      "predict", options_.batcher, std::move(predict_fn));
}

ServeService::~ServeService() { Stop(); }

Status ServeService::Start() {
  start_ = std::chrono::steady_clock::now();
  TraceRing::Global().SetSampleRate(options_.trace_sample_rate);
  TraceRing::Global().SetCapacity(
      static_cast<size_t>(std::max<int64_t>(1, options_.trace_ring_size)));
  SGCL_RETURN_NOT_OK(embed_batcher_->Start());
  SGCL_RETURN_NOT_OK(predict_batcher_->Start());

  RegisterDiagnosticsHandlers(&server_, start_);
  server_.Handle("POST", "/v1/embed", [this](const HttpRequest& request) {
    return HandleGraphsRequest(request, embed_batcher_.get(), "embed",
                               "embeddings", session_.embed_dim());
  });
  server_.Handle("POST", "/v1/predict", [this](const HttpRequest& request) {
    return HandleGraphsRequest(request, predict_batcher_.get(), "predict",
                               "keep_probs", -1);
  });
  server_.Handle("/v1/info", [this](const HttpRequest&) { return HandleInfo(); });
  server_.Handle("/status", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = StatusJson();
    return response;
  });

  HttpServerOptions http;
  http.num_threads = options_.http_threads;
  http.keep_alive = true;
  http.idle_timeout_ms = options_.idle_timeout_ms;
  http.max_body_bytes = options_.max_body_bytes;
  http.json_errors = true;
  const Status st = server_.Start(options_.http_port, http);
  if (!st.ok()) {
    embed_batcher_->Stop();
    predict_batcher_->Stop();
    return st;
  }
  SGCL_LOG(INFO) << "serve listening on http://127.0.0.1:" << server_.port()
                 << " (POST /v1/embed /v1/predict; GET /v1/info /status "
                    "/metrics /healthz /v1/traces)";
  return Status::OK();
}

void ServeService::Stop() {
  server_.Stop();
  if (embed_batcher_ != nullptr) embed_batcher_->Stop();
  if (predict_batcher_ != nullptr) predict_batcher_->Stop();
}

HttpResponse ServeService::HandleGraphsRequest(const HttpRequest& request,
                                               MicroBatcher* batcher,
                                               const std::string& endpoint,
                                               const std::string& response_key,
                                               int64_t dim_or_negative) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const std::string prefix = "serve/" + endpoint + "/";
  Counter* requests = registry.GetCounter(prefix + "requests");
  Counter* errors = registry.GetCounter(prefix + "errors");
  Counter* graphs_total = registry.GetCounter(prefix + "graphs");
  Histogram* latency =
      registry.GetHistogram(prefix + "latency_us", LatencyBoundsUs());

  const auto t0 = std::chrono::steady_clock::now();
  requests->Increment();
  // Maybe open a sampled trace for this request; the root span below
  // becomes the tree's root and every phase (parse, queue wait, batch
  // formation, forward, encode) hangs off it. The id goes back to the
  // client in X-Sgcl-Trace and onto the latency exemplar so a p99
  // bucket in /metrics resolves to a /v1/traces/<id> lookup.
  const TraceContext root_ctx = TraceRing::Global().MaybeStartTrace();
  const uint64_t trace_id = root_ctx.trace_id;
  ScopedTraceContext trace_install(root_ctx);
  HttpResponse response;
  {
    TraceSpan root_span("serve/request");
    auto parsed = [&] {
      SGCL_TRACE_SPAN("serve/parse");
      return ParseGraphsRequest(request.body, session_.feat_dim(),
                                options_.limits);
    }();
    if (!parsed.ok()) {
      errors->Increment();
      response = JsonError(400, parsed.status());
    } else {
      const std::vector<Graph>& graphs = *parsed;
      graphs_total->Increment(static_cast<int64_t>(graphs.size()));

      auto rows = batcher->Submit(graphs);
      if (!rows.ok()) {
        errors->Increment();
        if (rows.status().code() == StatusCode::kUnavailable) {
          response = JsonError(503, rows.status());
          response.extra_headers.push_back(
              {"Retry-After", std::to_string(options_.retry_after_s)});
        } else if (rows.status().code() == StatusCode::kInvalidArgument) {
          response = JsonError(400, rows.status());
        } else {
          response = JsonError(500, rows.status());
        }
      } else {
        SGCL_TRACE_SPAN("serve/encode");
        response.content_type = "application/json";
        response.body =
            FormatRowsResponse(response_key, *rows, dim_or_negative);
      }
    }
  }  // root span closes here, committing the trace to the ring
  latency->ObserveWithExemplar(
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()),
      trace_id);
  if (trace_id != 0) {
    response.extra_headers.push_back({"X-Sgcl-Trace", FormatTraceId(trace_id)});
  }
  return response;
}

HttpResponse ServeService::HandleInfo() const {
  const EncoderConfig& enc = model_->config().encoder;
  HttpResponse response;
  response.content_type = "application/json";
  response.body = StrFormat(
      "{\"version\":\"%s\",\"model\":{\"arch\":\"%s\",\"feat_dim\":%lld,"
      "\"embed_dim\":%lld,\"num_layers\":%d,\"pooling\":\"%s\",\"fused\":%s},"
      "\"limits\":{\"max_graphs\":%lld,\"max_total_nodes\":%lld},"
      "\"batcher\":{\"max_batch_graphs\":%lld,\"max_batch_nodes\":%lld,"
      "\"batch_timeout_us\":%lld,\"max_queue_requests\":%lld}}\n",
      kSgclVersion, GnnArchToString(enc.arch),
      static_cast<long long>(session_.feat_dim()),
      static_cast<long long>(session_.embed_dim()), enc.num_layers,
      PoolingKindToString(enc.pooling), session_.fused() ? "true" : "false",
      static_cast<long long>(options_.limits.max_graphs),
      static_cast<long long>(options_.limits.max_total_nodes),
      static_cast<long long>(options_.batcher.max_batch_graphs),
      static_cast<long long>(options_.batcher.max_batch_nodes),
      static_cast<long long>(options_.batcher.batch_timeout_us),
      static_cast<long long>(options_.batcher.max_queue_requests));
  return response;
}

std::string ServeService::StatusJson() const {
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::string json = "{\"state\":\"serving\"";
  json += ",\"run_id\":\"" + JsonEscape(GetRunId()) + "\"";
  json += ",\"uptime_seconds\":" + JsonDouble(uptime);
  json += ",\"fused\":" + std::string(session_.fused() ? "true" : "false");
  json += ",\"http_requests\":" + std::to_string(requests_served());
  for (const char* endpoint : {"embed", "predict"}) {
    const std::string prefix = std::string("serve/") + endpoint + "/";
    json += ",\"" + std::string(endpoint) + "\":{";
    json += "\"requests\":" +
            std::to_string(CounterValue(snapshot, prefix + "requests"));
    json += ",\"errors\":" +
            std::to_string(CounterValue(snapshot, prefix + "errors"));
    json += ",\"graphs\":" +
            std::to_string(CounterValue(snapshot, prefix + "graphs"));
    json += ",\"rejected\":" +
            std::to_string(CounterValue(snapshot, prefix + "rejected"));
    json += ",\"batches\":" +
            std::to_string(CounterValue(snapshot, prefix + "batches"));
    json += ",\"latency_us\":" + HistogramJson(snapshot, prefix + "latency_us");
    json += ",\"batch_graphs\":" +
            HistogramJson(snapshot, prefix + "batch_graphs");
    json += ",\"batch_nodes\":" +
            HistogramJson(snapshot, prefix + "batch_nodes");
    json += ",\"queue_wait_us\":" +
            HistogramJson(snapshot, prefix + "queue_wait_us");
    const auto gauge = snapshot.gauges.find(prefix + "queue_depth");
    json += ",\"queue_depth\":" +
            JsonDouble(gauge == snapshot.gauges.end() ? 0.0 : gauge->second);
    json += "}";
  }
  json += "}";
  return json;
}

}  // namespace serve
}  // namespace sgcl
