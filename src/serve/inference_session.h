// Read-only inference entry points over a loaded SgclModel for the
// serving layer.
//
// The session snapshots fused GinInferencePlans for both towers at
// construction (valid whenever the encoders are plain GIN stacks — the
// paper's default architecture) and falls back to the tape path for
// other architectures. Both paths are block-diagonal over a GraphBatch:
// a graph's rows never read another graph's rows, so results are
// bitwise identical whether a graph is encoded alone or inside a
// coalesced batch — the invariant the micro-batcher's determinism test
// pins down.
//
// The model must outlive the session, and no thread may mutate model
// weights while serving (the CLI loads a checkpoint once at startup and
// never trains).
#ifndef SGCL_SERVE_INFERENCE_SESSION_H_
#define SGCL_SERVE_INFERENCE_SESSION_H_

#include <cstdint>
#include <vector>

#include "core/sgcl_model.h"
#include "nn/gin_inference.h"

namespace sgcl {
namespace serve {

class InferenceSession {
 public:
  explicit InferenceSession(const SgclModel* model);

  int64_t feat_dim() const;
  int64_t embed_dim() const;
  // True when the fused tape-free path is active (plain GIN stacks).
  bool fused() const { return plan_k_.valid() && plan_q_.valid(); }

  // /v1/embed: pooled f_k graph embeddings, one [embed_dim] row per
  // graph (projection head dropped, paper §VI-A).
  Status EmbedBatch(const std::vector<const Graph*>& graphs,
                    std::vector<std::vector<float>>* rows) const;

  // /v1/predict: per-node keep probabilities sigma(h_i . w) under the
  // generator tower f_q (Eq. 18's learned score), one [num_nodes] row
  // per graph.
  Status PredictBatch(const std::vector<const Graph*>& graphs,
                      std::vector<std::vector<float>>* rows) const;

 private:
  const SgclModel* model_;
  GinInferencePlan plan_k_;
  GinInferencePlan plan_q_;
};

}  // namespace serve
}  // namespace sgcl

#endif  // SGCL_SERVE_INFERENCE_SESSION_H_
