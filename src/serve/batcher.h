// Dynamic micro-batcher: coalesces concurrent inference requests into
// one block-diagonal batch per model forward.
//
// State machine (one dispatch thread per batcher):
//
//   IDLE --first request arrives--> FILLING
//   FILLING: pop FIFO requests while the batch stays within
//            max_batch_graphs / max_batch_nodes; when the queue runs dry
//            wait until the oldest admitted request is batch_timeout_us
//            old, then EXECUTE whatever has accumulated.
//   EXECUTE: BatchFn calls over the concatenated graphs, re-chunked so
//            every forward respects the caps (an oversized request is
//            split; a lone graph bigger than max_batch_nodes is
//            indivisible and runs alone); per-request slices of the
//            result fulfil each caller's future; back to IDLE (or
//            straight to FILLING when the queue is non-empty).
//
// Queueing / overload policy: admission is bounded by
// max_queue_requests; when the queue is full Submit fails fast with
// Unavailable (the HTTP layer maps this to 503 + Retry-After) instead
// of letting latency grow without bound. Order is strict FIFO — a
// request that does not fit the open batch closes it rather than being
// overtaken (no starvation, deterministic under trace replay).
//
// Determinism: BatchFn receives graphs in admission order, and the
// fused GIN forward is block-diagonal — node rows of one graph never
// read another graph's rows — so a graph's result is bitwise identical
// whether it was served alone or coalesced (covered by
// tests/serve/service_test.cc).
#ifndef SGCL_SERVE_BATCHER_H_
#define SGCL_SERVE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"

namespace sgcl {
namespace serve {

struct MicroBatcherOptions {
  // No fused forward sees more than this many graphs...
  int64_t max_batch_graphs = 16;
  // ...or more than this many total nodes. Both are hard per-forward
  // caps: a single request that exceeds them is split across forwards
  // (only a lone graph bigger than max_batch_nodes runs over the node
  // cap — graphs are indivisible).
  int64_t max_batch_nodes = 4096;
  // How long the dispatch thread waits for more work after admitting the
  // batch's first request. 0 = never wait (greedy drain of the queue).
  int64_t batch_timeout_us = 2000;
  // Admission bound: requests queued but not yet executing. Full queue =
  // Unavailable.
  int64_t max_queue_requests = 256;
};

// Executes one coalesced batch: `graphs` concatenates the admitted
// requests' graphs in FIFO order; must append exactly one row per graph
// to `rows`. Runs on the dispatch thread.
using BatchFn = std::function<Status(const std::vector<const Graph*>& graphs,
                                     std::vector<std::vector<float>>* rows)>;

class MicroBatcher {
 public:
  MicroBatcher(std::string name, const MicroBatcherOptions& options,
               BatchFn fn);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Spawns the dispatch thread. InvalidArgument when already started.
  Status Start();
  // Fails queued requests with Unavailable and joins. Idempotent.
  void Stop();

  // Blocks the calling (HTTP worker) thread until the request's graphs
  // have gone through a batch: returns one row per graph, or
  // Unavailable immediately when the queue is full / the batcher is
  // stopped, or the BatchFn's error. Thread-safe.
  Result<std::vector<std::vector<float>>> Submit(
      const std::vector<Graph>& graphs);

  const std::string& name() const { return name_; }
  int64_t batches_executed() const;

 private:
  struct Pending;
  // Waits on cv_ through std::unique_lock, which libc++'s analysis
  // does not model; sgcl_lint's R8 does and keeps this machine-checked.
  void DispatchLoop() SGCL_NO_THREAD_SAFETY_ANALYSIS;
  // `form_start_us` is the collector-epoch time batch formation opened
  // (first admit), used to split traced requests' pre-execution time
  // into queue_wait vs. batch_form spans.
  void RunBatch(std::vector<Pending*> batch, int64_t form_start_us);

  const std::string name_;
  const MicroBatcherOptions options_;
  const BatchFn fn_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending*> queue_ SGCL_GUARDED_BY(mu_);
  bool running_ SGCL_GUARDED_BY(mu_) = false;
  bool stopping_ SGCL_GUARDED_BY(mu_) = false;
  int64_t batches_executed_ SGCL_GUARDED_BY(mu_) = 0;
  std::thread dispatch_thread_;

  // Metrics (registered once per batcher name in the global registry).
  Counter* submitted_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* batches_ = nullptr;
  Histogram* batch_graphs_ = nullptr;
  Histogram* batch_nodes_ = nullptr;
  Histogram* queue_wait_us_ = nullptr;
  Gauge* queue_depth_ = nullptr;
};

}  // namespace serve
}  // namespace sgcl

#endif  // SGCL_SERVE_BATCHER_H_
