#include "tensor/graph_ops.h"

#include <algorithm>
#include <cmath>

namespace sgcl {
namespace {

using internal::MakeOpOutput;

void CheckIndexRange(const std::vector<int32_t>& index, int64_t limit) {
  for (int32_t i : index) {
    SGCL_CHECK(i >= 0 && i < limit);
  }
}

}  // namespace

Tensor GatherRows(const Tensor& x, const std::vector<int32_t>& index) {
  SGCL_CHECK_EQ(x.dim(), 2);
  const int64_t n = x.rows(), d = x.cols();
  const int64_t e = static_cast<int64_t>(index.size());
  CheckIndexRange(index, n);
  std::vector<float> out(static_cast<size_t>(e * d));
  for (int64_t r = 0; r < e; ++r) {
    const float* src = x.data() + static_cast<int64_t>(index[r]) * d;
    std::copy(src, src + d, out.data() + r * d);
  }
  auto x_impl = x.impl();
  return MakeOpOutput(
      {e, d}, std::move(out), {x},
      [x_impl, index, e, d](TensorImpl& self) {
        if (!x_impl->requires_grad) return;
        x_impl->EnsureGradAllocated();
        for (int64_t r = 0; r < e; ++r) {
          float* dst = x_impl->grad.data() + static_cast<int64_t>(index[r]) * d;
          const float* g = self.grad.data() + r * d;
          for (int64_t j = 0; j < d; ++j) dst[j] += g[j];
        }
      });
}

Tensor ScatterAddRows(const Tensor& x, const std::vector<int32_t>& index,
                      int64_t num_rows) {
  SGCL_CHECK_EQ(x.dim(), 2);
  const int64_t e = x.rows(), d = x.cols();
  SGCL_CHECK_EQ(e, static_cast<int64_t>(index.size()));
  CheckIndexRange(index, num_rows);
  std::vector<float> out(static_cast<size_t>(num_rows * d), 0.0f);
  for (int64_t r = 0; r < e; ++r) {
    float* dst = out.data() + static_cast<int64_t>(index[r]) * d;
    const float* src = x.data() + r * d;
    for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
  }
  auto x_impl = x.impl();
  return MakeOpOutput(
      {num_rows, d}, std::move(out), {x},
      [x_impl, index, e, d](TensorImpl& self) {
        if (!x_impl->requires_grad) return;
        x_impl->EnsureGradAllocated();
        for (int64_t r = 0; r < e; ++r) {
          const float* g =
              self.grad.data() + static_cast<int64_t>(index[r]) * d;
          float* dst = x_impl->grad.data() + r * d;
          for (int64_t j = 0; j < d; ++j) dst[j] += g[j];
        }
      });
}

Tensor SegmentSum(const Tensor& x, const std::vector<int32_t>& segment_ids,
                  int64_t num_segments) {
  return ScatterAddRows(x, segment_ids, num_segments);
}

Tensor SegmentMean(const Tensor& x, const std::vector<int32_t>& segment_ids,
                   int64_t num_segments) {
  SGCL_CHECK_EQ(x.dim(), 2);
  const int64_t n = x.rows(), d = x.cols();
  SGCL_CHECK_EQ(n, static_cast<int64_t>(segment_ids.size()));
  CheckIndexRange(segment_ids, num_segments);
  std::vector<float> counts(static_cast<size_t>(num_segments), 0.0f);
  for (int32_t s : segment_ids) counts[s] += 1.0f;
  std::vector<float> out(static_cast<size_t>(num_segments * d), 0.0f);
  for (int64_t r = 0; r < n; ++r) {
    float* dst = out.data() + static_cast<int64_t>(segment_ids[r]) * d;
    const float* src = x.data() + r * d;
    for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
  }
  for (int64_t s = 0; s < num_segments; ++s) {
    if (counts[s] > 0.0f) {
      float* row = out.data() + s * d;
      for (int64_t j = 0; j < d; ++j) row[j] /= counts[s];
    }
  }
  auto x_impl = x.impl();
  return MakeOpOutput(
      {num_segments, d}, std::move(out), {x},
      [x_impl, segment_ids, counts = std::move(counts), n, d](
          TensorImpl& self) {
        if (!x_impl->requires_grad) return;
        x_impl->EnsureGradAllocated();
        for (int64_t r = 0; r < n; ++r) {
          const int32_t s = segment_ids[r];
          const float inv = 1.0f / counts[s];
          const float* g = self.grad.data() + static_cast<int64_t>(s) * d;
          float* dst = x_impl->grad.data() + r * d;
          for (int64_t j = 0; j < d; ++j) dst[j] += g[j] * inv;
        }
      });
}

Tensor SegmentMax(const Tensor& x, const std::vector<int32_t>& segment_ids,
                  int64_t num_segments) {
  SGCL_CHECK_EQ(x.dim(), 2);
  const int64_t n = x.rows(), d = x.cols();
  SGCL_CHECK_EQ(n, static_cast<int64_t>(segment_ids.size()));
  CheckIndexRange(segment_ids, num_segments);
  constexpr float kNegInf = -3.4e38f;
  std::vector<float> out(static_cast<size_t>(num_segments * d), kNegInf);
  std::vector<int32_t> argmax(static_cast<size_t>(num_segments * d), -1);
  for (int64_t r = 0; r < n; ++r) {
    const int64_t s = segment_ids[r];
    const float* src = x.data() + r * d;
    float* dst = out.data() + s * d;
    int32_t* arg = argmax.data() + s * d;
    for (int64_t j = 0; j < d; ++j) {
      if (src[j] > dst[j]) {
        dst[j] = src[j];
        arg[j] = static_cast<int32_t>(r);
      }
    }
  }
  // Empty segments: emit zeros instead of -inf.
  for (size_t i = 0; i < out.size(); ++i) {
    if (argmax[i] < 0) out[i] = 0.0f;
  }
  auto x_impl = x.impl();
  return MakeOpOutput(
      {num_segments, d}, std::move(out), {x},
      [x_impl, argmax = std::move(argmax), num_segments, d](TensorImpl& self) {
        if (!x_impl->requires_grad) return;
        x_impl->EnsureGradAllocated();
        for (int64_t s = 0; s < num_segments; ++s) {
          for (int64_t j = 0; j < d; ++j) {
            const int32_t r = argmax[s * d + j];
            if (r < 0) continue;
            x_impl->grad[static_cast<int64_t>(r) * d + j] +=
                self.grad[s * d + j];
          }
        }
      });
}

Tensor SegmentSoftmax(const Tensor& scores,
                      const std::vector<int32_t>& segment_ids,
                      int64_t num_segments) {
  SGCL_CHECK_EQ(scores.dim(), 2);
  SGCL_CHECK_EQ(scores.cols(), 1);
  const int64_t e = scores.rows();
  SGCL_CHECK_EQ(e, static_cast<int64_t>(segment_ids.size()));
  CheckIndexRange(segment_ids, num_segments);
  constexpr float kNegInf = -3.4e38f;
  std::vector<float> seg_max(static_cast<size_t>(num_segments), kNegInf);
  for (int64_t r = 0; r < e; ++r) {
    seg_max[segment_ids[r]] =
        std::max(seg_max[segment_ids[r]], scores.data()[r]);
  }
  std::vector<float> out(static_cast<size_t>(e));
  std::vector<float> seg_sum(static_cast<size_t>(num_segments), 0.0f);
  for (int64_t r = 0; r < e; ++r) {
    out[r] = std::exp(scores.data()[r] - seg_max[segment_ids[r]]);
    seg_sum[segment_ids[r]] += out[r];
  }
  for (int64_t r = 0; r < e; ++r) out[r] /= seg_sum[segment_ids[r]];
  auto s_impl = scores.impl();
  return MakeOpOutput(
      {e, 1}, std::move(out), {scores},
      [s_impl, segment_ids, num_segments, e](TensorImpl& self) {
        if (!s_impl->requires_grad) return;
        s_impl->EnsureGradAllocated();
        // dL/ds_e = p_e * (g_e - sum_{e' in seg} p_e' g_e').
        std::vector<float> seg_dot(static_cast<size_t>(num_segments), 0.0f);
        for (int64_t r = 0; r < e; ++r) {
          seg_dot[segment_ids[r]] += self.data[r] * self.grad[r];
        }
        for (int64_t r = 0; r < e; ++r) {
          s_impl->grad[r] +=
              self.data[r] * (self.grad[r] - seg_dot[segment_ids[r]]);
        }
      });
}

}  // namespace sgcl
