#include "tensor/init.h"

#include <cmath>
#include <vector>

namespace sgcl {

Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng) {
  SGCL_CHECK(rng != nullptr);
  SGCL_CHECK_GT(fan_in, 0);
  SGCL_CHECK_GT(fan_out, 0);
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  std::vector<float> values(static_cast<size_t>(fan_in * fan_out));
  for (float& v : values) v = static_cast<float>(rng->Uniform(-a, a));
  return Tensor::FromVector({fan_in, fan_out}, std::move(values),
                            /*requires_grad=*/true);
}

Tensor HeNormal(int64_t fan_in, int64_t fan_out, Rng* rng) {
  SGCL_CHECK(rng != nullptr);
  SGCL_CHECK_GT(fan_in, 0);
  SGCL_CHECK_GT(fan_out, 0);
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  std::vector<float> values(static_cast<size_t>(fan_in * fan_out));
  for (float& v : values) v = static_cast<float>(rng->Normal(0.0, stddev));
  return Tensor::FromVector({fan_in, fan_out}, std::move(values),
                            /*requires_grad=*/true);
}

Tensor ZerosParam(int64_t rows, int64_t cols) {
  return Tensor::Zeros({rows, cols}, /*requires_grad=*/true);
}

}  // namespace sgcl
