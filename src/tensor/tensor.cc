#include "tensor/tensor.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace sgcl {
namespace {

int64_t NumelOf(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    SGCL_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

}  // namespace

Tensor Tensor::Zeros(std::vector<int64_t> shape, bool requires_grad) {
  return Full(std::move(shape), 0.0f, requires_grad);
}

Tensor Tensor::Ones(std::vector<int64_t> shape, bool requires_grad) {
  return Full(std::move(shape), 1.0f, requires_grad);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value,
                    bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  const int64_t n = NumelOf(shape);
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<size_t>(n), value);
  impl->requires_grad = requires_grad;
  if (requires_grad) impl->EnsureGradAllocated();
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(std::vector<int64_t> shape,
                          std::vector<float> values, bool requires_grad) {
  const int64_t n = NumelOf(shape);
  SGCL_CHECK_EQ(n, static_cast<int64_t>(values.size()));
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  if (requires_grad) impl->EnsureGradAllocated();
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return FromVector({1, 1}, {value}, requires_grad);
}

void Tensor::Backward() {
  SGCL_CHECK_EQ(numel(), 1);
  // Topologically order the graph (parents before children) iteratively to
  // avoid stack overflow on deep tapes.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }
  // `order` has parents before children; traverse children-first.
  impl_->EnsureGradAllocated();
  impl_->grad[0] += 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(*node);
    }
  }
}

Tensor Tensor::Detach() const {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = impl_->data;
  impl->requires_grad = false;
  return Tensor(std::move(impl));
}

std::string Tensor::DebugString() const {
  std::string shape_str;
  for (size_t i = 0; i < impl_->shape.size(); ++i) {
    if (i > 0) shape_str += " x ";
    shape_str += std::to_string(impl_->shape[i]);
  }
  float lo = 0.0f, hi = 0.0f;
  if (!impl_->data.empty()) {
    auto [mn, mx] = std::minmax_element(impl_->data.begin(), impl_->data.end());
    lo = *mn;
    hi = *mx;
  }
  return StrFormat("Tensor[%s] (%.4g .. %.4g)", shape_str.c_str(), lo, hi);
}

namespace internal {

Tensor MakeOpOutput(std::vector<int64_t> shape, std::vector<float> data,
                    std::vector<Tensor> parents,
                    std::function<void(TensorImpl&)> backward_fn) {
  const int64_t n = NumelOf(shape);
  SGCL_CHECK_EQ(n, static_cast<int64_t>(data.size()));
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  bool any_grad = false;
  for (const Tensor& p : parents) {
    if (p.requires_grad()) {
      any_grad = true;
      break;
    }
  }
  if (any_grad) {
    impl->requires_grad = true;
    impl->EnsureGradAllocated();
    impl->backward_fn = std::move(backward_fn);
    impl->parents.reserve(parents.size());
    for (const Tensor& p : parents) impl->parents.push_back(p.impl());
    // Parents that require grad must have their buffers ready for
    // accumulation before the tape runs.
    for (auto& p : impl->parents) {
      if (p->requires_grad) p->EnsureGradAllocated();
    }
  }
  return Tensor(std::move(impl));
}

}  // namespace internal
}  // namespace sgcl
