// First-order optimizers over lists of trainable tensors.
#ifndef SGCL_TENSOR_OPTIMIZER_H_
#define SGCL_TENSOR_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace sgcl {

// Serializable Adam state: step counter plus first/second moments, one
// vector per parameter in the optimizer's parameter order. Checkpointing
// must capture this — resuming Adam with zeroed moments changes every
// subsequent update, which breaks bitwise-reproducible resume.
struct AdamState {
  int64_t t = 0;
  std::vector<std::vector<float>> m;
  std::vector<std::vector<float>> v;
};

// Base class owning the parameter handles. Not copyable: optimizer state
// (moments) is tied to the exact parameter tensors it was built with.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update using the gradients currently stored in the params.
  virtual void Step() = 0;

  // Clears all parameter gradients.
  void ZeroGrad();

  // Rescales gradients so their global L2 norm is at most max_norm.
  // Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

// SGD with optional momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void Step() override;

 private:
  float lr_;
  float momentum_;
  float weight_decay_;
  std::vector<std::vector<float>> velocity_;
};

// Adam (Kingma & Ba) with bias correction and decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void Step() override;

  // Copy of the full optimizer state for checkpointing.
  AdamState ExportState() const;
  // Replaces the state. InvalidArgument when `state` does not match this
  // optimizer's parameter count or per-parameter sizes; on failure the
  // current state is left untouched (no partial application).
  Status ImportState(const AdamState& state);

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

}  // namespace sgcl

#endif  // SGCL_TENSOR_OPTIMIZER_H_
