#include "tensor/optimizer.h"

#include <cmath>

#include "common/string_util.h"

namespace sgcl {

Optimizer::Optimizer(std::vector<Tensor> params)
    : params_(std::move(params)) {
  for (Tensor& p : params_) {
    SGCL_CHECK(p.requires_grad());
    p.impl()->EnsureGradAllocated();
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  SGCL_CHECK_GT(max_norm, 0.0f);
  double total = 0.0;
  for (Tensor& p : params_) {
    for (float g : p.impl()->grad) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm) {
    const float scale = max_norm / (norm + 1e-12f);
    for (Tensor& p : params_) {
      for (float& g : p.impl()->grad) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (Tensor& p : params_) {
      velocity_.emplace_back(p.impl()->data.size(), 0.0f);
    }
  }
}

void Sgd::Step() {
  for (size_t k = 0; k < params_.size(); ++k) {
    auto& impl = *params_[k].impl();
    for (size_t i = 0; i < impl.data.size(); ++i) {
      float g = impl.grad[i] + weight_decay_ * impl.data[i];
      if (momentum_ > 0.0f) {
        velocity_[k][i] = momentum_ * velocity_[k][i] + g;
        g = velocity_[k][i];
      }
      impl.data[i] -= lr_ * g;
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Tensor& p : params_) {
    m_.emplace_back(p.impl()->data.size(), 0.0f);
    v_.emplace_back(p.impl()->data.size(), 0.0f);
  }
}

AdamState Adam::ExportState() const {
  AdamState state;
  state.t = t_;
  state.m = m_;
  state.v = v_;
  return state;
}

Status Adam::ImportState(const AdamState& state) {
  if (state.t < 0) {
    return Status::InvalidArgument(
        StrFormat("Adam state has negative step count %lld",
                  static_cast<long long>(state.t)));
  }
  if (state.m.size() != m_.size() || state.v.size() != v_.size()) {
    return Status::InvalidArgument(
        StrFormat("Adam state covers %zu/%zu moment vectors, optimizer has "
                  "%zu parameters",
                  state.m.size(), state.v.size(), m_.size()));
  }
  for (size_t k = 0; k < m_.size(); ++k) {
    if (state.m[k].size() != m_[k].size() ||
        state.v[k].size() != v_[k].size()) {
      return Status::InvalidArgument(
          StrFormat("Adam state moment %zu has %zu/%zu entries, parameter "
                    "has %zu",
                    k, state.m[k].size(), state.v[k].size(), m_[k].size()));
    }
  }
  t_ = state.t;
  m_ = state.m;
  v_ = state.v;
  return Status::OK();
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    auto& impl = *params_[k].impl();
    for (size_t i = 0; i < impl.data.size(); ++i) {
      const float g = impl.grad[i] + weight_decay_ * impl.data[i];
      m_[k][i] = beta1_ * m_[k][i] + (1.0f - beta1_) * g;
      v_[k][i] = beta2_ * v_[k][i] + (1.0f - beta2_) * g * g;
      const float mhat = m_[k][i] / bc1;
      const float vhat = v_[k][i] / bc2;
      impl.data[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace sgcl
