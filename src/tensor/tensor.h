// Dense float32 tensor with reverse-mode autograd.
//
// A Tensor is a cheap shared handle to a TensorImpl holding row-major data,
// an optional gradient buffer, and — when the tensor was produced by a
// differentiable op — a backward closure plus links to its parents. Calling
// Backward() on a scalar runs the tape in reverse topological order.
//
// The op library lives in "tensor/ops.h"; this header only defines storage,
// accessors, and the backward traversal.
#ifndef SGCL_TENSOR_TENSOR_H_
#define SGCL_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"

namespace sgcl {

struct TensorImpl {
  std::vector<int64_t> shape;
  std::vector<float> data;
  // Allocated lazily (by Backward or by ops that need it) when
  // requires_grad; same length as data.
  std::vector<float> grad;
  bool requires_grad = false;
  // Non-null only for op outputs. Reads this->grad and accumulates into
  // parents' grads.
  std::function<void(TensorImpl&)> backward_fn;
  std::vector<std::shared_ptr<TensorImpl>> parents;

  // Element count backed by actual storage: 0 for a default-constructed
  // (rank-0, empty) tensor, matching the product of the shape otherwise.
  int64_t numel() const { return static_cast<int64_t>(data.size()); }
  void EnsureGradAllocated() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

class Tensor {
 public:
  // An empty (rank-0, zero-element) tensor; most APIs reject it.
  Tensor() : impl_(std::make_shared<TensorImpl>()) {}

  // ---- Factories ----
  static Tensor Zeros(std::vector<int64_t> shape, bool requires_grad = false);
  static Tensor Ones(std::vector<int64_t> shape, bool requires_grad = false);
  static Tensor Full(std::vector<int64_t> shape, float value,
                     bool requires_grad = false);
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values,
                           bool requires_grad = false);
  static Tensor Scalar(float value, bool requires_grad = false);

  // ---- Shape ----
  const std::vector<int64_t>& shape() const { return impl_->shape; }
  int64_t dim() const { return static_cast<int64_t>(impl_->shape.size()); }
  int64_t numel() const { return impl_->numel(); }
  // Rows/cols of a rank-2 tensor (the dominant case in this library).
  int64_t rows() const {
    SGCL_CHECK_EQ(dim(), 2);
    return impl_->shape[0];
  }
  int64_t cols() const {
    SGCL_CHECK_EQ(dim(), 2);
    return impl_->shape[1];
  }

  // ---- Data access ----
  float* data() { return impl_->data.data(); }
  const float* data() const { return impl_->data.data(); }
  const std::vector<float>& values() const { return impl_->data; }
  float* grad() { return impl_->grad.data(); }
  const std::vector<float>& grad_values() const { return impl_->grad; }
  bool has_grad() const { return !impl_->grad.empty(); }

  float At(int64_t r, int64_t c) const {
    SGCL_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    return impl_->data[r * cols() + c];
  }
  void Set(int64_t r, int64_t c, float v) {
    SGCL_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
    impl_->data[r * cols() + c] = v;
  }
  // Value of a single-element tensor.
  float item() const {
    SGCL_CHECK_EQ(numel(), 1);
    return impl_->data[0];
  }

  bool requires_grad() const { return impl_->requires_grad; }
  void set_requires_grad(bool value) {
    impl_->requires_grad = value;
    if (value) impl_->EnsureGradAllocated();
  }

  // Zeroes this tensor's gradient buffer (no-op if none allocated).
  void ZeroGrad() {
    for (float& g : impl_->grad) g = 0.0f;
  }

  // Runs reverse-mode differentiation from this tensor. Must be a scalar
  // (the gradient seed is 1); gradients accumulate into every reachable
  // tensor with requires_grad.
  void Backward();

  // A copy of the values with no autograd history.
  Tensor Detach() const;

  // Human-readable "[r x c] (min .. max)" summary for debugging.
  std::string DebugString() const;

  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<TensorImpl> impl_;
};

namespace internal {

// Builds an op-output tensor: shape/data plus autograd wiring when any
// parent requires grad.
Tensor MakeOpOutput(std::vector<int64_t> shape, std::vector<float> data,
                    std::vector<Tensor> parents,
                    std::function<void(TensorImpl&)> backward_fn);

}  // namespace internal
}  // namespace sgcl

#endif  // SGCL_TENSOR_TENSOR_H_
