// Differentiable gather / scatter / segment ops used by GNN layers.
//
// Message passing over a batched edge list is expressed as
//   messages = GatherRows(X, src);            // per-edge source features
//   aggregated = ScatterAddRows(messages, dst, num_nodes);
// and graph-level pooling as SegmentSum/Mean/Max over node->graph ids.
#ifndef SGCL_TENSOR_GRAPH_OPS_H_
#define SGCL_TENSOR_GRAPH_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace sgcl {

// out[e] = x[index[e]]; x [n,d], index values in [0,n) -> [E,d].
Tensor GatherRows(const Tensor& x, const std::vector<int32_t>& index);

// out[index[e]] += x[e]; x [E,d] -> [num_rows,d].
Tensor ScatterAddRows(const Tensor& x, const std::vector<int32_t>& index,
                      int64_t num_rows);

// Per-segment sum: x [n,d], segment_ids values in [0,num_segments)
// -> [num_segments,d]. Identical math to ScatterAddRows; named alias for
// pooling call sites.
Tensor SegmentSum(const Tensor& x, const std::vector<int32_t>& segment_ids,
                  int64_t num_segments);

// Per-segment arithmetic mean. Empty segments yield zero rows.
Tensor SegmentMean(const Tensor& x, const std::vector<int32_t>& segment_ids,
                   int64_t num_segments);

// Per-segment max with argmax backward. Empty segments yield zero rows.
Tensor SegmentMax(const Tensor& x, const std::vector<int32_t>& segment_ids,
                  int64_t num_segments);

// Softmax of scores [E,1] within each segment (used for GAT edge attention
// and the Lipschitz generator's attention weights). Empty segments are fine.
Tensor SegmentSoftmax(const Tensor& scores,
                      const std::vector<int32_t>& segment_ids,
                      int64_t num_segments);

}  // namespace sgcl

#endif  // SGCL_TENSOR_GRAPH_OPS_H_
