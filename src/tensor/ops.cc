#include "tensor/ops.h"

#include <cmath>

#include "common/metrics.h"
#include "common/parallel.h"

namespace sgcl {
namespace {

using internal::MakeOpOutput;

// Kernel dispatch tallies (always-on; one relaxed atomic per call — noise
// next to the O(mkn) kernels they count).
void TallyMatMul(const char* which, int64_t flops) {
  static Counter* const matmul =
      MetricsRegistry::Global().GetCounter("tensor/matmul_calls");
  static Counter* const matmul_tb =
      MetricsRegistry::Global().GetCounter("tensor/matmul_transb_calls");
  static Counter* const flops_counter =
      MetricsRegistry::Global().GetCounter("tensor/matmul_flops");
  (which[0] == 't' ? matmul_tb : matmul)->Increment();
  flops_counter->Increment(flops);
}

// Rows per ParallelFor chunk for a kernel costing `flops_per_row`: small
// matrices stay inline; large ones split into ~64 KFLOP tasks.
int64_t RowGrain(int64_t flops_per_row) {
  constexpr int64_t kMinFlopsPerChunk = 1 << 16;
  return std::max<int64_t>(1,
                           kMinFlopsPerChunk / std::max<int64_t>(1, flops_per_row));
}

// Accumulates `delta` into `t`'s grad if it participates in autograd.
void AccumulateGrad(const std::shared_ptr<TensorImpl>& t,
                    const std::vector<float>& delta) {
  if (!t->requires_grad) return;
  t->EnsureGradAllocated();
  SGCL_DCHECK(t->grad.size() == delta.size());
  for (size_t i = 0; i < delta.size(); ++i) t->grad[i] += delta[i];
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  SGCL_CHECK(a.shape() == b.shape());
}

// Generic unary op: y = f(x), dx = dy * dfdx where dfdx is precomputed
// from the forward values.
Tensor UnaryOp(const Tensor& a, std::vector<float> out,
               std::vector<float> dfdx) {
  auto a_impl = a.impl();
  return MakeOpOutput(
      a.shape(), std::move(out), {a},
      [a_impl, dfdx = std::move(dfdx)](TensorImpl& self) {
        if (!a_impl->requires_grad) return;
        a_impl->EnsureGradAllocated();
        for (size_t i = 0; i < self.grad.size(); ++i) {
          a_impl->grad[i] += self.grad[i] * dfdx[i];
        }
      });
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  SGCL_CHECK_EQ(a.dim(), 2);
  SGCL_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.rows(), k = a.cols(), n = b.cols();
  SGCL_CHECK_EQ(k, b.rows());
  TallyMatMul("matmul", 2 * m * k * n);
  std::vector<float> out(static_cast<size_t>(m * n), 0.0f);
  const float* ad = a.data();
  const float* bd = b.data();
  // Row-partitioned: each chunk owns disjoint output rows, so results are
  // identical for every thread count.
  ParallelFor(0, m, RowGrain(k * n), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      for (int64_t p = 0; p < k; ++p) {
        const float av = ad[i * k + p];
        if (av == 0.0f) continue;
        const float* brow = bd + p * n;
        float* orow = out.data() + i * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  return MakeOpOutput(
      {m, n}, std::move(out), {a, b},
      [a_impl, b_impl, m, k, n](TensorImpl& self) {
        const float* g = self.grad.data();
        if (a_impl->requires_grad) {
          a_impl->EnsureGradAllocated();
          // dA = dC * B^T; chunks own disjoint rows of dA.
          const float* bd = b_impl->data.data();
          float* agrad = a_impl->grad.data();
          ParallelFor(0, m, RowGrain(k * n), [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
              for (int64_t p = 0; p < k; ++p) {
                float acc = 0.0f;
                const float* grow = g + i * n;
                const float* brow = bd + p * n;
                for (int64_t j = 0; j < n; ++j) acc += grow[j] * brow[j];
                agrad[i * k + p] += acc;
              }
            }
          });
        }
        if (b_impl->requires_grad) {
          b_impl->EnsureGradAllocated();
          // dB = A^T * dC; chunks own disjoint rows p of dB, and each
          // accumulates over i in ascending order — the same order as the
          // sequential i-outer loop, so sums are bitwise-identical.
          const float* ad = a_impl->data.data();
          float* bgrad = b_impl->grad.data();
          ParallelFor(0, k, RowGrain(m * n), [&](int64_t p0, int64_t p1) {
            for (int64_t p = p0; p < p1; ++p) {
              float* brow = bgrad + p * n;
              for (int64_t i = 0; i < m; ++i) {
                const float av = ad[i * k + p];
                if (av == 0.0f) continue;
                const float* grow = g + i * n;
                for (int64_t j = 0; j < n; ++j) brow[j] += av * grow[j];
              }
            }
          });
        }
      });
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  SGCL_CHECK_EQ(a.dim(), 2);
  SGCL_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.rows(), k = a.cols(), n = b.rows();
  SGCL_CHECK_EQ(k, b.cols());
  TallyMatMul("transb", 2 * m * k * n);
  std::vector<float> out(static_cast<size_t>(m * n), 0.0f);
  const float* ad = a.data();
  const float* bd = b.data();
  // Row-partitioned over output rows (see MatMul).
  ParallelFor(0, m, RowGrain(k * n), [&](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        const float* arow = ad + i * k;
        const float* brow = bd + j * k;
        for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        out[i * n + j] = acc;
      }
    }
  });
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  return MakeOpOutput(
      {m, n}, std::move(out), {a, b},
      [a_impl, b_impl, m, k, n](TensorImpl& self) {
        const float* g = self.grad.data();
        if (a_impl->requires_grad) {
          a_impl->EnsureGradAllocated();
          // dA = dC * B; chunks own disjoint rows of dA.
          const float* bd = b_impl->data.data();
          float* agrad = a_impl->grad.data();
          ParallelFor(0, m, RowGrain(k * n), [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
              for (int64_t j = 0; j < n; ++j) {
                const float gv = g[i * n + j];
                if (gv == 0.0f) continue;
                const float* brow = bd + j * k;
                float* arow = agrad + i * k;
                for (int64_t p = 0; p < k; ++p) arow[p] += gv * brow[p];
              }
            }
          });
        }
        if (b_impl->requires_grad) {
          b_impl->EnsureGradAllocated();
          // dB = dC^T * A; chunks own disjoint rows j of dB, each summing
          // over i ascending — the sequential accumulation order.
          const float* ad = a_impl->data.data();
          float* bgrad = b_impl->grad.data();
          ParallelFor(0, n, RowGrain(m * k), [&](int64_t j0, int64_t j1) {
            for (int64_t j = j0; j < j1; ++j) {
              float* brow = bgrad + j * k;
              for (int64_t i = 0; i < m; ++i) {
                const float gv = g[i * n + j];
                if (gv == 0.0f) continue;
                const float* arow = ad + i * k;
                for (int64_t p = 0; p < k; ++p) brow[p] += gv * arow[p];
              }
            }
          });
        }
      });
}

Tensor Transpose(const Tensor& a) {
  SGCL_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.rows(), n = a.cols();
  std::vector<float> out(static_cast<size_t>(m * n));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out[j * m + i] = a.data()[i * n + j];
  }
  auto a_impl = a.impl();
  return MakeOpOutput({n, m}, std::move(out), {a},
                      [a_impl, m, n](TensorImpl& self) {
                        if (!a_impl->requires_grad) return;
                        a_impl->EnsureGradAllocated();
                        for (int64_t i = 0; i < m; ++i) {
                          for (int64_t j = 0; j < n; ++j) {
                            a_impl->grad[i * n + j] += self.grad[j * m + i];
                          }
                        }
                      });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) {
    std::vector<float> out(a.values());
    for (size_t i = 0; i < out.size(); ++i) out[i] += b.data()[i];
    auto a_impl = a.impl();
    auto b_impl = b.impl();
    return MakeOpOutput(a.shape(), std::move(out), {a, b},
                        [a_impl, b_impl](TensorImpl& self) {
                          AccumulateGrad(a_impl, self.grad);
                          AccumulateGrad(b_impl, self.grad);
                        });
  }
  // Row broadcast: a [m,n] + b [1,n].
  SGCL_CHECK_EQ(a.dim(), 2);
  SGCL_CHECK_EQ(b.dim(), 2);
  SGCL_CHECK_EQ(b.rows(), 1);
  SGCL_CHECK_EQ(a.cols(), b.cols());
  const int64_t m = a.rows(), n = a.cols();
  std::vector<float> out(a.values());
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) out[i * n + j] += b.data()[j];
  }
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  return MakeOpOutput(
      a.shape(), std::move(out), {a, b},
      [a_impl, b_impl, m, n](TensorImpl& self) {
        AccumulateGrad(a_impl, self.grad);
        if (b_impl->requires_grad) {
          b_impl->EnsureGradAllocated();
          for (int64_t i = 0; i < m; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              b_impl->grad[j] += self.grad[i * n + j];
            }
          }
        }
      });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  std::vector<float> out(a.values());
  for (size_t i = 0; i < out.size(); ++i) out[i] -= b.data()[i];
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  return MakeOpOutput(a.shape(), std::move(out), {a, b},
                      [a_impl, b_impl](TensorImpl& self) {
                        AccumulateGrad(a_impl, self.grad);
                        if (b_impl->requires_grad) {
                          b_impl->EnsureGradAllocated();
                          for (size_t i = 0; i < self.grad.size(); ++i) {
                            b_impl->grad[i] -= self.grad[i];
                          }
                        }
                      });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  std::vector<float> out(a.values());
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b.data()[i];
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  return MakeOpOutput(
      a.shape(), std::move(out), {a, b},
      [a_impl, b_impl](TensorImpl& self) {
        if (a_impl->requires_grad) {
          a_impl->EnsureGradAllocated();
          for (size_t i = 0; i < self.grad.size(); ++i) {
            a_impl->grad[i] += self.grad[i] * b_impl->data[i];
          }
        }
        if (b_impl->requires_grad) {
          b_impl->EnsureGradAllocated();
          for (size_t i = 0; i < self.grad.size(); ++i) {
            b_impl->grad[i] += self.grad[i] * a_impl->data[i];
          }
        }
      });
}

Tensor MulBroadcastCol(const Tensor& x, const Tensor& c) {
  SGCL_CHECK_EQ(x.dim(), 2);
  SGCL_CHECK_EQ(c.dim(), 2);
  SGCL_CHECK_EQ(c.cols(), 1);
  SGCL_CHECK_EQ(x.rows(), c.rows());
  const int64_t m = x.rows(), n = x.cols();
  std::vector<float> out(x.values());
  for (int64_t i = 0; i < m; ++i) {
    const float cv = c.data()[i];
    for (int64_t j = 0; j < n; ++j) out[i * n + j] *= cv;
  }
  auto x_impl = x.impl();
  auto c_impl = c.impl();
  return MakeOpOutput(
      x.shape(), std::move(out), {x, c},
      [x_impl, c_impl, m, n](TensorImpl& self) {
        if (x_impl->requires_grad) {
          x_impl->EnsureGradAllocated();
          for (int64_t i = 0; i < m; ++i) {
            const float cv = c_impl->data[i];
            for (int64_t j = 0; j < n; ++j) {
              x_impl->grad[i * n + j] += self.grad[i * n + j] * cv;
            }
          }
        }
        if (c_impl->requires_grad) {
          c_impl->EnsureGradAllocated();
          for (int64_t i = 0; i < m; ++i) {
            float acc = 0.0f;
            for (int64_t j = 0; j < n; ++j) {
              acc += self.grad[i * n + j] * x_impl->data[i * n + j];
            }
            c_impl->grad[i] += acc;
          }
        }
      });
}

Tensor AddScalar(const Tensor& a, float s) {
  std::vector<float> out(a.values());
  for (float& v : out) v += s;
  auto a_impl = a.impl();
  return MakeOpOutput(a.shape(), std::move(out), {a},
                      [a_impl](TensorImpl& self) {
                        AccumulateGrad(a_impl, self.grad);
                      });
}

Tensor MulScalar(const Tensor& a, float s) {
  std::vector<float> out(a.values());
  for (float& v : out) v *= s;
  auto a_impl = a.impl();
  return MakeOpOutput(a.shape(), std::move(out), {a},
                      [a_impl, s](TensorImpl& self) {
                        if (!a_impl->requires_grad) return;
                        a_impl->EnsureGradAllocated();
                        for (size_t i = 0; i < self.grad.size(); ++i) {
                          a_impl->grad[i] += self.grad[i] * s;
                        }
                      });
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

Tensor Relu(const Tensor& a) {
  std::vector<float> out(a.values());
  std::vector<float> dfdx(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] > 0.0f) {
      dfdx[i] = 1.0f;
    } else {
      out[i] = 0.0f;
      dfdx[i] = 0.0f;
    }
  }
  return UnaryOp(a, std::move(out), std::move(dfdx));
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  std::vector<float> out(a.values());
  std::vector<float> dfdx(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i] > 0.0f) {
      dfdx[i] = 1.0f;
    } else {
      out[i] *= negative_slope;
      dfdx[i] = negative_slope;
    }
  }
  return UnaryOp(a, std::move(out), std::move(dfdx));
}

Tensor Sigmoid(const Tensor& a) {
  std::vector<float> out(a.values());
  std::vector<float> dfdx(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    const float s = 1.0f / (1.0f + std::exp(-out[i]));
    out[i] = s;
    dfdx[i] = s * (1.0f - s);
  }
  return UnaryOp(a, std::move(out), std::move(dfdx));
}

Tensor Tanh(const Tensor& a) {
  std::vector<float> out(a.values());
  std::vector<float> dfdx(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    const float t = std::tanh(out[i]);
    out[i] = t;
    dfdx[i] = 1.0f - t * t;
  }
  return UnaryOp(a, std::move(out), std::move(dfdx));
}

Tensor Exp(const Tensor& a) {
  std::vector<float> out(a.values());
  std::vector<float> dfdx(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    const float e = std::exp(out[i]);
    out[i] = e;
    dfdx[i] = e;
  }
  return UnaryOp(a, std::move(out), std::move(dfdx));
}

Tensor Log(const Tensor& a, float eps) {
  std::vector<float> out(a.values());
  std::vector<float> dfdx(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    const float x = out[i] > eps ? out[i] : eps;
    out[i] = std::log(x);
    dfdx[i] = 1.0f / x;
  }
  return UnaryOp(a, std::move(out), std::move(dfdx));
}

Tensor Square(const Tensor& a) {
  std::vector<float> out(a.values());
  std::vector<float> dfdx(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    dfdx[i] = 2.0f * out[i];
    out[i] *= out[i];
  }
  return UnaryOp(a, std::move(out), std::move(dfdx));
}

Tensor Softplus(const Tensor& a) {
  std::vector<float> out(a.values());
  std::vector<float> dfdx(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    const float x = out[i];
    out[i] = std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
    dfdx[i] = 1.0f / (1.0f + std::exp(-x));  // sigmoid(x)
  }
  return UnaryOp(a, std::move(out), std::move(dfdx));
}

Tensor Sum(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.values()) acc += v;
  auto a_impl = a.impl();
  return MakeOpOutput({1, 1}, {static_cast<float>(acc)}, {a},
                      [a_impl](TensorImpl& self) {
                        if (!a_impl->requires_grad) return;
                        a_impl->EnsureGradAllocated();
                        const float g = self.grad[0];
                        for (float& gi : a_impl->grad) gi += g;
                      });
}

Tensor Mean(const Tensor& a) {
  SGCL_CHECK_GT(a.numel(), 0);
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor SumSquares(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.values()) acc += static_cast<double>(v) * v;
  auto a_impl = a.impl();
  return MakeOpOutput({1, 1}, {static_cast<float>(acc)}, {a},
                      [a_impl](TensorImpl& self) {
                        if (!a_impl->requires_grad) return;
                        a_impl->EnsureGradAllocated();
                        const float g = self.grad[0];
                        for (size_t i = 0; i < a_impl->data.size(); ++i) {
                          a_impl->grad[i] += 2.0f * g * a_impl->data[i];
                        }
                      });
}

Tensor FrobeniusNorm(const Tensor& a, float eps) {
  double acc = eps;
  for (float v : a.values()) acc += static_cast<double>(v) * v;
  const float norm = static_cast<float>(std::sqrt(acc));
  auto a_impl = a.impl();
  return MakeOpOutput({1, 1}, {norm}, {a},
                      [a_impl, norm](TensorImpl& self) {
                        if (!a_impl->requires_grad) return;
                        a_impl->EnsureGradAllocated();
                        const float g = self.grad[0] / norm;
                        for (size_t i = 0; i < a_impl->data.size(); ++i) {
                          a_impl->grad[i] += g * a_impl->data[i];
                        }
                      });
}

Tensor RowSum(const Tensor& a) {
  SGCL_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.rows(), n = a.cols();
  std::vector<float> out(static_cast<size_t>(m), 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    float acc = 0.0f;
    for (int64_t j = 0; j < n; ++j) acc += a.data()[i * n + j];
    out[i] = acc;
  }
  auto a_impl = a.impl();
  return MakeOpOutput({m, 1}, std::move(out), {a},
                      [a_impl, m, n](TensorImpl& self) {
                        if (!a_impl->requires_grad) return;
                        a_impl->EnsureGradAllocated();
                        for (int64_t i = 0; i < m; ++i) {
                          const float g = self.grad[i];
                          for (int64_t j = 0; j < n; ++j) {
                            a_impl->grad[i * n + j] += g;
                          }
                        }
                      });
}

Tensor RowL2Normalize(const Tensor& a, float eps) {
  SGCL_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.rows(), n = a.cols();
  std::vector<float> out(a.values());
  std::vector<float> norms(static_cast<size_t>(m));
  for (int64_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      const float v = out[i * n + j];
      acc += static_cast<double>(v) * v;
    }
    const float norm = std::max(static_cast<float>(std::sqrt(acc)), eps);
    norms[i] = norm;
    for (int64_t j = 0; j < n; ++j) out[i * n + j] /= norm;
  }
  auto a_impl = a.impl();
  return MakeOpOutput(
      a.shape(), std::move(out), {a},
      [a_impl, norms = std::move(norms), m, n](TensorImpl& self) {
        if (!a_impl->requires_grad) return;
        a_impl->EnsureGradAllocated();
        for (int64_t i = 0; i < m; ++i) {
          // y = x/||x||; dx = (dy - y (y . dy)) / ||x||.
          const float* y = self.data.data() + i * n;
          const float* dy = self.grad.data() + i * n;
          float dot = 0.0f;
          for (int64_t j = 0; j < n; ++j) dot += y[j] * dy[j];
          float* dx = a_impl->grad.data() + i * n;
          for (int64_t j = 0; j < n; ++j) {
            dx[j] += (dy[j] - y[j] * dot) / norms[i];
          }
        }
      });
}

Tensor Softmax(const Tensor& a) {
  SGCL_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.rows(), n = a.cols();
  std::vector<float> out(a.values());
  for (int64_t i = 0; i < m; ++i) {
    float* row = out.data() + i * n;
    float mx = row[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    for (int64_t j = 0; j < n; ++j) row[j] /= denom;
  }
  auto a_impl = a.impl();
  return MakeOpOutput(
      a.shape(), std::move(out), {a},
      [a_impl, m, n](TensorImpl& self) {
        if (!a_impl->requires_grad) return;
        a_impl->EnsureGradAllocated();
        for (int64_t i = 0; i < m; ++i) {
          const float* p = self.data.data() + i * n;
          const float* dy = self.grad.data() + i * n;
          float dot = 0.0f;
          for (int64_t j = 0; j < n; ++j) dot += p[j] * dy[j];
          float* dx = a_impl->grad.data() + i * n;
          for (int64_t j = 0; j < n; ++j) dx[j] += p[j] * (dy[j] - dot);
        }
      });
}

Tensor LogSoftmax(const Tensor& a) {
  SGCL_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.rows(), n = a.cols();
  std::vector<float> out(a.values());
  for (int64_t i = 0; i < m; ++i) {
    float* row = out.data() + i * n;
    float mx = row[0];
    for (int64_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < n; ++j) denom += std::exp(row[j] - mx);
    const float lse = mx + static_cast<float>(std::log(denom));
    for (int64_t j = 0; j < n; ++j) row[j] -= lse;
  }
  auto a_impl = a.impl();
  return MakeOpOutput(
      a.shape(), std::move(out), {a},
      [a_impl, m, n](TensorImpl& self) {
        if (!a_impl->requires_grad) return;
        a_impl->EnsureGradAllocated();
        for (int64_t i = 0; i < m; ++i) {
          const float* logp = self.data.data() + i * n;
          const float* dy = self.grad.data() + i * n;
          float gsum = 0.0f;
          for (int64_t j = 0; j < n; ++j) gsum += dy[j];
          float* dx = a_impl->grad.data() + i * n;
          for (int64_t j = 0; j < n; ++j) {
            dx[j] += dy[j] - std::exp(logp[j]) * gsum;
          }
        }
      });
}

Tensor Dropout(const Tensor& a, float p, Rng* rng, bool training) {
  SGCL_CHECK_GE(p, 0.0f);
  SGCL_CHECK_LT(p, 1.0f);
  if (!training || p == 0.0f) return a;
  SGCL_CHECK(rng != nullptr);
  const float scale = 1.0f / (1.0f - p);
  std::vector<float> out(a.values());
  std::vector<float> dfdx(out.size());
  for (size_t i = 0; i < out.size(); ++i) {
    if (rng->Bernoulli(p)) {
      out[i] = 0.0f;
      dfdx[i] = 0.0f;
    } else {
      out[i] *= scale;
      dfdx[i] = scale;
    }
  }
  return UnaryOp(a, std::move(out), std::move(dfdx));
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  SGCL_CHECK_EQ(a.dim(), 2);
  SGCL_CHECK_EQ(b.dim(), 2);
  SGCL_CHECK_EQ(a.rows(), b.rows());
  const int64_t m = a.rows(), na = a.cols(), nb = b.cols();
  std::vector<float> out(static_cast<size_t>(m * (na + nb)));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < na; ++j) out[i * (na + nb) + j] = a.At(i, j);
    for (int64_t j = 0; j < nb; ++j) out[i * (na + nb) + na + j] = b.At(i, j);
  }
  auto a_impl = a.impl();
  auto b_impl = b.impl();
  return MakeOpOutput(
      {m, na + nb}, std::move(out), {a, b},
      [a_impl, b_impl, m, na, nb](TensorImpl& self) {
        const int64_t n = na + nb;
        if (a_impl->requires_grad) {
          a_impl->EnsureGradAllocated();
          for (int64_t i = 0; i < m; ++i) {
            for (int64_t j = 0; j < na; ++j) {
              a_impl->grad[i * na + j] += self.grad[i * n + j];
            }
          }
        }
        if (b_impl->requires_grad) {
          b_impl->EnsureGradAllocated();
          for (int64_t i = 0; i < m; ++i) {
            for (int64_t j = 0; j < nb; ++j) {
              b_impl->grad[i * nb + j] += self.grad[i * n + na + j];
            }
          }
        }
      });
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int>& labels) {
  SGCL_CHECK_EQ(logits.dim(), 2);
  const int64_t m = logits.rows(), c = logits.cols();
  SGCL_CHECK_EQ(m, static_cast<int64_t>(labels.size()));
  // Forward: mean over rows of -log softmax(logits)[label].
  std::vector<float> probs(logits.values());
  double loss = 0.0;
  for (int64_t i = 0; i < m; ++i) {
    float* row = probs.data() + i * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) denom += std::exp(row[j] - mx);
    const float lse = mx + static_cast<float>(std::log(denom));
    const int y = labels[i];
    SGCL_CHECK(y >= 0 && y < c);
    loss -= (row[y] - lse);
    for (int64_t j = 0; j < c; ++j) {
      row[j] = std::exp(row[j] - lse);  // softmax, reused in backward
    }
  }
  loss /= static_cast<double>(m);
  auto l_impl = logits.impl();
  return MakeOpOutput(
      {1, 1}, {static_cast<float>(loss)}, {logits},
      [l_impl, probs = std::move(probs), labels, m, c](TensorImpl& self) {
        if (!l_impl->requires_grad) return;
        l_impl->EnsureGradAllocated();
        const float g = self.grad[0] / static_cast<float>(m);
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < c; ++j) {
            float delta = probs[i * c + j];
            if (j == labels[i]) delta -= 1.0f;
            l_impl->grad[i * c + j] += g * delta;
          }
        }
      });
}

Tensor BceWithLogits(const Tensor& logits, const Tensor& targets,
                     const Tensor& mask) {
  CheckSameShape(logits, targets);
  CheckSameShape(logits, mask);
  const size_t n = logits.values().size();
  double loss = 0.0;
  double count = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (mask.data()[i] == 0.0f) continue;
    const float z = logits.data()[i];
    const float t = targets.data()[i];
    // Stable: max(z,0) - z*t + log(1 + exp(-|z|)).
    loss += std::max(z, 0.0f) - z * t + std::log1p(std::exp(-std::fabs(z)));
    count += 1.0;
  }
  SGCL_CHECK_GT(count, 0.0);
  loss /= count;
  auto l_impl = logits.impl();
  auto t_impl = targets.impl();
  auto m_impl = mask.impl();
  return MakeOpOutput(
      {1, 1}, {static_cast<float>(loss)}, {logits, targets, mask},
      [l_impl, t_impl, m_impl, count](TensorImpl& self) {
        if (!l_impl->requires_grad) return;
        l_impl->EnsureGradAllocated();
        const float g = self.grad[0] / static_cast<float>(count);
        for (size_t i = 0; i < l_impl->data.size(); ++i) {
          if (m_impl->data[i] == 0.0f) continue;
          const float z = l_impl->data[i];
          const float s = 1.0f / (1.0f + std::exp(-z));
          l_impl->grad[i] += g * (s - t_impl->data[i]);
        }
      });
}

}  // namespace sgcl
