// Parameter initialization schemes.
#ifndef SGCL_TENSOR_INIT_H_
#define SGCL_TENSOR_INIT_H_

#include <cstdint>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace sgcl {

// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
// Returns a [fan_in, fan_out] tensor with requires_grad set.
Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng* rng);

// Kaiming/He normal: N(0, sqrt(2 / fan_in)); for ReLU stacks.
Tensor HeNormal(int64_t fan_in, int64_t fan_out, Rng* rng);

// Zero-initialized trainable tensor (biases).
Tensor ZerosParam(int64_t rows, int64_t cols);

}  // namespace sgcl

#endif  // SGCL_TENSOR_INIT_H_
