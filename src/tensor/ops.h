// Differentiable dense tensor ops.
//
// All functions are pure: they allocate a fresh output tensor and, when any
// input requires grad, wire a backward closure into the autograd tape.
// Rank-2 row-major tensors are assumed unless stated otherwise. Graph
// gather/scatter/segment ops live in "tensor/graph_ops.h".
#ifndef SGCL_TENSOR_OPS_H_
#define SGCL_TENSOR_OPS_H_

#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace sgcl {

// ---- Linear algebra ----

// [m,k] x [k,n] -> [m,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
// a [m,k], b [n,k] -> a * b^T, [m,n]. Avoids materializing b^T.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);
// [m,n] -> [n,m].
Tensor Transpose(const Tensor& a);

// ---- Elementwise / broadcast ----

// Same shape, or b of shape [1,n] broadcast across a's rows.
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
// Elementwise product; shapes must match exactly.
Tensor Mul(const Tensor& a, const Tensor& b);
// Row scaling: x [n,d] * c [n,1] -> [n,d].
Tensor MulBroadcastCol(const Tensor& x, const Tensor& c);
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);

// ---- Activations & pointwise transforms ----

Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
// Numerically guarded: log(max(a, eps)).
Tensor Log(const Tensor& a, float eps = 1e-12f);
Tensor Square(const Tensor& a);
// Numerically stable log(1 + exp(a)).
Tensor Softplus(const Tensor& a);

// ---- Reductions ----

// Sum / mean of all elements -> [1,1].
Tensor Sum(const Tensor& a);
Tensor Mean(const Tensor& a);
// Sum of squared elements -> [1,1].
Tensor SumSquares(const Tensor& a);
// sqrt(sum a_ij^2 + eps) -> [1,1]; the Frobenius norm used by the paper's
// weight regularizer (Eq. 26).
Tensor FrobeniusNorm(const Tensor& a, float eps = 1e-12f);
// Per-row sum: [n,d] -> [n,1].
Tensor RowSum(const Tensor& a);

// ---- Row-wise normalizations ----

// x_i / max(||x_i||_2, eps).
Tensor RowL2Normalize(const Tensor& a, float eps = 1e-12f);
Tensor Softmax(const Tensor& a);
Tensor LogSoftmax(const Tensor& a);

// ---- Regularization / structure ----

// Inverted dropout. Identity when !training or p == 0.
Tensor Dropout(const Tensor& a, float p, Rng* rng, bool training);
// [n,da] ++ [n,db] -> [n,da+db].
Tensor ConcatCols(const Tensor& a, const Tensor& b);

// ---- Losses ----

// Mean softmax cross-entropy over rows; labels[i] in [0, C).
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int>& labels);
// Mean binary cross-entropy with logits over entries where mask != 0
// (mask handles missing labels in multi-task datasets). `targets` in {0,1}.
Tensor BceWithLogits(const Tensor& logits, const Tensor& targets,
                     const Tensor& mask);

}  // namespace sgcl

#endif  // SGCL_TENSOR_OPS_H_
