// Minimal recursive-descent JSON parser for tool inputs (e.g. loading
// google-benchmark result files in tools/bench_diff).
//
// Scope: full RFC 8259 value grammar — objects, arrays, strings with
// escapes (including \uXXXX, encoded to UTF-8), numbers, booleans, null —
// with a depth cap against adversarial nesting. Out of scope: streaming,
// comments, trailing commas, duplicate-key detection (last key wins,
// matching common parsers). This is a reader; JSON *writing* stays with
// the hand-rolled emitters in metrics/trace (they control formatting).
#ifndef SGCL_COMMON_JSON_H_
#define SGCL_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace sgcl {

// An immutable parsed JSON value. Accessors are checked: asking an object
// for array elements (etc.) is a fatal programming error, so callers test
// the type first or use the Find/Get helpers that return nullptr/defaults.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}

  // Parses exactly one JSON value; trailing non-whitespace is an error.
  static Result<JsonValue> Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  // Object member lookup; nullptr when absent or this is not an object.
  const JsonValue* Find(const std::string& key) const;
  // Typed convenience lookups with defaults for optional members.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  double GetDouble(const std::string& key, double fallback = 0.0) const;

 private:
  friend class JsonParser;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

// Reads and parses a whole JSON file. NotFound / InvalidArgument carry the
// path so tool error messages are actionable.
Result<JsonValue> ParseJsonFile(const std::string& path);

}  // namespace sgcl

#endif  // SGCL_COMMON_JSON_H_
