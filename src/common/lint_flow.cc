// Flow pass of the lint engine (DESIGN.md §9): a real tokenizer, scope
// tracking, and a per-function symbol table powering the thread-safety
// rules sgcl-R8..R10. The pass is deliberately a *linter*, not a
// compiler: it tracks braces, template argument lists, and the handful
// of declaration shapes this codebase uses, and it errs on the side of
// silence when a construct is outside that grammar. Two deliberate
// differences from clang's -Wthread-safety analysis are documented in
// DESIGN.md: lambdas inherit the enclosing function's held-lock set
// (clang analyzes them as separate functions), and std::unique_lock is
// modeled as a capability holder (libc++'s annotations do not annotate
// it), which is exactly why the two checkers are complementary.
#include <algorithm>
#include <cctype>
#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/lint_internal.h"
#include "common/string_util.h"

namespace sgcl::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsSimpleIdent(const std::string& s) {
  if (s.empty() || !IsIdentStart(s[0])) return false;
  for (char c : s) {
    if (!IsIdentChar(c)) return false;
  }
  return true;
}

// Multi-char punctuators, longest first. "<<" and ">>" are deliberately
// absent: lexing them as two tokens keeps template-angle matching a
// simple depth count (Foo<Bar<T>> closes with two '>' tokens).
const char* const kPuncts[] = {
    "...", "->*", "<=>", "::", "->", ".*", "++", "--", "+=", "-=",
    "*=",  "/=",  "%=",  "&=", "|=", "^=", "==", "!=", "<=", ">=",
    "&&",  "||",
};

bool IsRawStringPrefixAt(const std::string& s, size_t i, size_t* prefix_len) {
  static const char* const kPrefixes[] = {"R\"", "u8R\"", "uR\"", "UR\"",
                                          "LR\""};
  if (i > 0 && IsIdentChar(s[i - 1])) return false;
  for (const char* p : kPrefixes) {
    const size_t n = std::string(p).size();
    if (s.compare(i, n, p) == 0) {
      *prefix_len = n;
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Token> Tokenize(const std::string& content) {
  std::vector<Token> out;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;
  size_t line_start = 0;
  const auto advance_line = [&](size_t pos) {
    ++line;
    line_start = pos + 1;
  };
  const auto col = [&](size_t pos) { return static_cast<int>(pos - line_start); };
  const auto push = [&](TokenKind kind, size_t begin, size_t end, int tline,
                        int tcol) {
    out.push_back({kind, content.substr(begin, end - begin), tline, tcol});
  };
  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      advance_line(i);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      while (i < n && content[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') advance_line(i);
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      continue;
    }
    // Preprocessor directive ('#' first on its line): one token for the
    // whole line including backslash continuations.
    if (c == '#' && (out.empty() || out.back().line < line)) {
      const size_t begin = i;
      const int tline = line, tcol = col(i);
      while (i < n) {
        if (content[i] == '\n') {
          if (i > begin && content[i - 1] == '\\') {
            advance_line(i);
            ++i;
            continue;
          }
          break;
        }
        ++i;
      }
      push(TokenKind::kDirective, begin, i, tline, tcol);
      continue;
    }
    // Raw string literal.
    size_t prefix_len = 0;
    if (IsRawStringPrefixAt(content, i, &prefix_len)) {
      const size_t begin = i;
      const int tline = line, tcol = col(i);
      size_t j = i + prefix_len;  // just past the opening quote
      std::string delim;
      while (j < n && content[j] != '(') delim += content[j++];
      const std::string close = ")" + delim + "\"";
      size_t end = content.find(close, j);
      end = end == std::string::npos ? n : end + close.size();
      for (size_t k = i; k < end; ++k) {
        if (content[k] == '\n') advance_line(k);
      }
      push(TokenKind::kString, begin, end, tline, tcol);
      i = end;
      continue;
    }
    // Identifier / keyword.
    if (IsIdentStart(c)) {
      const size_t begin = i;
      while (i < n && IsIdentChar(content[i])) ++i;
      push(TokenKind::kIdentifier, begin, i, line, col(begin));
      continue;
    }
    // Number (pp-number: digits, idents, quotes as separators, dots,
    // signed exponents).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      const size_t begin = i;
      while (i < n) {
        const char d = content[i];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++i;
          continue;
        }
        if ((d == '+' || d == '-') && i > begin &&
            (content[i - 1] == 'e' || content[i - 1] == 'E' ||
             content[i - 1] == 'p' || content[i - 1] == 'P')) {
          ++i;
          continue;
        }
        break;
      }
      push(TokenKind::kNumber, begin, i, line, col(begin));
      continue;
    }
    // String / char literal (escape-aware, single line in practice).
    if (c == '"' || c == '\'') {
      const size_t begin = i;
      const int tline = line, tcol = col(i);
      size_t j = i + 1;
      while (j < n && content[j] != c) {
        if (content[j] == '\\' && j + 1 < n) ++j;
        if (content[j] == '\n') advance_line(j);
        ++j;
      }
      j = j < n ? j + 1 : n;
      push(c == '"' ? TokenKind::kString : TokenKind::kChar, begin, j, tline,
           tcol);
      i = j;
      continue;
    }
    // Punctuator: longest match from the table, else one char.
    size_t len = 1;
    for (const char* p : kPuncts) {
      const size_t pn = std::string(p).size();
      if (content.compare(i, pn, p) == 0) {
        len = pn;
        break;
      }
    }
    push(TokenKind::kPunct, i, i + len, line, col(i));
    i += len;
  }
  return out;
}

namespace {

using internal::FlowResult;

Finding MakeFinding(const std::string& file, int line, const char* rule,
                    Severity severity, std::string message) {
  Finding f;
  f.file = file;
  f.line = line;
  f.rule = rule;
  f.severity = severity;
  f.message = std::move(message);
  return f;
}


bool TextIs(const Token& t, const char* s) { return t.text == s; }

bool IsMutexTypeName(const std::string& s) {
  return s == "mutex" || s == "shared_mutex" || s == "recursive_mutex" ||
         s == "timed_mutex" || s == "recursive_timed_mutex" ||
         s == "shared_timed_mutex";
}

bool IsAtomicTypeName(const std::string& s) {
  return s == "atomic" || s.rfind("atomic_", 0) == 0;
}

bool IsLockHolderType(const std::string& s) {
  return s == "lock_guard" || s == "unique_lock" || s == "scoped_lock" ||
         s == "shared_lock";
}

// Index of the brace matching tokens[open] (which must be "{"), or the
// last token when unbalanced.
size_t MatchingBrace(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == "{") ++depth;
    if (toks[i].text == "}" && --depth == 0) return i;
  }
  return toks.size() - 1;
}

// Index just past a template argument list opening at tokens[open]
// ("<"). Bails (returns open) when the scan hits a token that cannot
// appear in template arguments, so `a < b` is not eaten.
size_t SkipAngles(const std::vector<Token>& toks, size_t open) {
  int depth = 0;
  for (size_t i = open; i < toks.size(); ++i) {
    const std::string& s = toks[i].text;
    if (s == "<") ++depth;
    if (s == ">" && --depth == 0) return i + 1;
    if (s == ";" || s == "{" || s == "}") return open;
  }
  return open;
}

// Pending tokens of the current statement with template-parameter
// groups (`template <...>`) removed — classification looks at the
// declaration shape, and `template <class T>` must not read as a class
// definition. With strip_annotations, SGCL_*(...) annotation-macro
// groups go too, so `int hits_ SGCL_GUARDED_BY(mu_){0};` classifies as
// a brace-initialized member, not a function body.
std::vector<Token> StripTemplates(const std::vector<Token>& pending,
                                  bool strip_annotations = false) {
  std::vector<Token> out;
  for (size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].text == "template" && i + 1 < pending.size() &&
        pending[i + 1].text == "<") {
      int depth = 0;
      size_t j = i + 1;
      for (; j < pending.size(); ++j) {
        if (pending[j].text == "<") ++depth;
        if (pending[j].text == ">" && --depth == 0) break;
      }
      i = j;
      continue;
    }
    if (strip_annotations && pending[i].text.rfind("SGCL_", 0) == 0 &&
        i + 1 < pending.size() && pending[i + 1].text == "(") {
      int depth = 0;
      size_t j = i + 1;
      for (; j < pending.size(); ++j) {
        if (pending[j].text == "(") ++depth;
        if (pending[j].text == ")" && --depth == 0) break;
      }
      i = j;
      continue;
    }
    out.push_back(pending[i]);
  }
  return out;
}

bool IsSpecifier(const std::string& s) {
  return s == "inline" || s == "static" || s == "constexpr" ||
         s == "friend" || s == "typedef" || s == "extern" ||
         s == "mutable" || s == "virtual" || s == "explicit" ||
         s == "thread_local" || s == "consteval" || s == "constinit";
}

struct Scope {
  enum class Kind { kFile, kNamespace, kClass, kFunction, kBlock };
  Scope() = default;
  explicit Scope(Kind k) : kind(k) {}
  Kind kind = Kind::kBlock;
  std::string class_name;  // kClass: this class; kFunction: owning class
  std::string func_name;   // kFunction only
  bool ctor_dtor = false;
  int paren_depth = 0;  // per-scope so lambda bodies restart counting
  std::vector<std::string> locks;  // canonical mutexes acquired here
  // kFunction only: RAII lock variables and local atomics in scope.
  std::map<std::string, std::vector<std::string>> lock_vars;
  std::set<std::string> local_atomics;
};

// Canonical mutex name: a member mutex becomes "Class::name" so
// acquisition edges match across translation units; anything else
// (globals, accessor calls) keeps its spelled form.
std::string CanonMutex(std::string expr, const std::string& class_name,
                       const GlobalTables* tables) {
  if (expr.rfind("this->", 0) == 0) expr = expr.substr(6);
  while (!expr.empty() && expr[0] == '&') expr = expr.substr(1);
  if (!IsSimpleIdent(expr) || class_name.empty() || tables == nullptr) {
    return expr;
  }
  const std::string qualified = class_name + "::" + expr;
  if (std::binary_search(tables->mutex_members.begin(),
                         tables->mutex_members.end(), qualified)) {
    return qualified;
  }
  return expr;
}

// The shared statement/scope walker. In decl mode (decls != nullptr)
// it harvests annotations and member types; in flow mode
// (flow != nullptr, with tables and path) it tracks held locks and
// emits R8/R10 findings plus R9 acquisition edges.
class Walker {
 public:
  Walker(const std::vector<Token>& toks, const GlobalTables* tables,
         const std::string* path, FileDecls* decls, FlowResult* flow)
      : toks_(toks), tables_(tables), path_(path), decls_(decls),
        flow_(flow) {
    hot_path_ = path_ != nullptr && internal::IsHotPathFile(*path_);
  }

  void Run() {
    stack_.push_back(Scope(Scope::Kind::kFile));
    for (size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      if (t.kind == TokenKind::kDirective) continue;
      Scope& cur = stack_.back();
      if (t.kind == TokenKind::kPunct) {
        if (t.text == "(") {
          ++cur.paren_depth;
          pending_.push_back(t);
          continue;
        }
        if (t.text == ")") {
          if (cur.paren_depth > 0) --cur.paren_depth;
          pending_.push_back(t);
          continue;
        }
        if (t.text == ";" && cur.paren_depth == 0) {
          EndStatement();
          pending_.clear();
          continue;
        }
        if (t.text == "{") {
          if (cur.paren_depth > 0) {
            // Lambda body or braced init inside an argument list: a
            // block that inherits the held-lock set.
            stack_.push_back(Scope(Scope::Kind::kBlock));
            pending_.clear();
            continue;
          }
          size_t skip_to = 0;
          Scope next = Classify(i, &skip_to);
          if (skip_to != 0) {
            // Brace-init / enum body: swallow the group, keep the
            // statement open, and leave a marker so a constructor's
            // init list still classifies its real body as a function.
            i = skip_to;
            pending_.push_back({TokenKind::kPunct, "<init>", t.line, t.col});
            continue;
          }
          stack_.push_back(std::move(next));
          pending_.clear();
          continue;
        }
        if (t.text == "}") {
          if (stack_.size() > 1) stack_.pop_back();
          pending_.clear();
          continue;
        }
        pending_.push_back(t);
        continue;
      }
      if (t.kind == TokenKind::kIdentifier && flow_ != nullptr) {
        FlowAtIdent(i);
      }
      pending_.push_back(t);
    }
  }

 private:
  const Scope* EnclosingFunction() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return &*it;
    }
    return nullptr;
  }
  Scope* EnclosingFunctionMutable() {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction) return &*it;
    }
    return nullptr;
  }
  const Scope* EnclosingClass() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == Scope::Kind::kClass) return &*it;
    }
    return nullptr;
  }

  std::vector<std::string> HeldLocks() const {
    std::vector<std::string> held;
    for (const Scope& s : stack_) {
      held.insert(held.end(), s.locks.begin(), s.locks.end());
    }
    return held;
  }

  // ---- scope classification ------------------------------------------

  // Decides what the "{" at toks_[brace] opens, based on the pending
  // statement tokens. When the brace is a brace-init/enum group that
  // should be swallowed without opening a scope, sets *skip_to to the
  // matching "}" index and the returned scope is unused.
  Scope Classify(size_t brace, size_t* skip_to) {
    const std::vector<Token> p =
        StripTemplates(pending_, /*strip_annotations=*/true);
    size_t s = 0;
    while (s < p.size() && IsSpecifier(p[s].text)) ++s;
    const Scope& parent = stack_.back();

    if (s < p.size() && p[s].text == "namespace") {
      return Scope(Scope::Kind::kNamespace);
    }
    if (s < p.size() && (p[s].text == "enum" || p[s].text == "union")) {
      *skip_to = MatchingBrace(toks_, brace);
      return {};
    }
    if (s < p.size() && (p[s].text == "class" || p[s].text == "struct")) {
      Scope sc(Scope::Kind::kClass);
      sc.class_name = ClassNameFrom(p, s + 1);
      return sc;
    }

    if (parent.kind == Scope::Kind::kFunction ||
        parent.kind == Scope::Kind::kBlock) {
      static const char* const kControl[] = {"if",     "for",  "while",
                                             "switch", "do",   "else",
                                             "try",    "catch", "return"};
      if (p.empty()) return Scope(Scope::Kind::kBlock);
      for (const char* kw : kControl) {
        if (p[0].text == kw) return Scope(Scope::Kind::kBlock);
      }
      const std::string& last = p.back().text;
      if (last == ")" || last == "]") return Scope(Scope::Kind::kBlock);
      *skip_to = MatchingBrace(toks_, brace);  // braced initializer
      return {};
    }

    // File / namespace / class scope: function definition or an
    // initializer group.
    if (LooksLikeFunction(p)) return MakeFunctionScope(pending_);
    *skip_to = MatchingBrace(toks_, brace);
    return {};
  }

  static std::string ClassNameFrom(const std::vector<Token>& p, size_t from) {
    std::string name;
    int paren = 0;
    for (size_t i = from; i < p.size(); ++i) {
      const std::string& s = p[i].text;
      if (s == "(") ++paren;
      if (s == ")") {
        --paren;
        continue;
      }
      if (paren > 0) continue;
      if (s == ":") break;  // base clause
      if (p[i].kind == TokenKind::kIdentifier && s != "final" &&
          s != "alignas") {
        name = s;
      }
    }
    return name;
  }

  static bool LooksLikeFunction(const std::vector<Token>& p) {
    if (p.empty()) return false;
    bool has_paren = false;
    for (const Token& t : p) {
      if (t.text == "(") has_paren = true;
    }
    if (!has_paren) return false;
    const std::string& last = p.back().text;
    if (last == ")" || last == "const" || last == "noexcept" ||
        last == "override" || last == "final" || last == "mutable" ||
        last == "<init>") {
      return true;
    }
    // Trailing return type: `auto f(...) -> T {`.
    for (size_t i = 1; i < p.size(); ++i) {
      if (p[i].text == "->" && p[i - 1].text == ")") return true;
    }
    return false;
  }

  Scope MakeFunctionScope(const std::vector<Token>& pending) {
    const std::vector<Token> p = StripTemplates(pending);
    Scope fn(Scope::Kind::kFunction);
    // First "(" at angle depth 0 opens the parameter list.
    size_t paren = p.size();
    int angle = 0;
    for (size_t i = 0; i < p.size(); ++i) {
      const std::string& s = p[i].text;
      if (s == "<" && i > 0 && p[i - 1].kind == TokenKind::kIdentifier &&
          p[i - 1].text != "operator") {
        ++angle;
      } else if (s == ">" && angle > 0) {
        --angle;
      } else if (s == "(" && angle == 0) {
        paren = i;
        break;
      }
    }
    // Name chain walks back over `A::B::name` / `~name`.
    std::string method, qualifier;
    bool dtor = false;
    if (paren != p.size() && paren > 0) {
      size_t i = paren - 1;
      if (p[i].kind == TokenKind::kIdentifier) {
        method = p[i].text;
        while (i >= 1) {
          if (p[i - 1].text == "~") {
            dtor = true;
            --i;
            continue;
          }
          if (i >= 2 && p[i - 1].text == "::" &&
              p[i - 2].kind == TokenKind::kIdentifier) {
            if (qualifier.empty()) qualifier = p[i - 2].text;
            i -= 2;
            continue;
          }
          break;
        }
      }
    }
    const Scope* cls = EnclosingClass();
    fn.class_name = !qualifier.empty()
                        ? qualifier
                        : (cls != nullptr ? cls->class_name : std::string());
    fn.func_name = method;
    fn.ctor_dtor = dtor || (!method.empty() && method == fn.class_name);
    // Entry capabilities: inline SGCL_REQUIRES(...) plus any recorded
    // declaration for (class, method).
    for (size_t i = 0; i + 1 < p.size(); ++i) {
      if ((p[i].text == "SGCL_REQUIRES" ||
           p[i].text == "SGCL_REQUIRES_SHARED") &&
          p[i + 1].text == "(") {
        for (const std::string& m : MacroArgs(p, i + 1)) {
          fn.locks.push_back(CanonMutex(m, fn.class_name, tables_));
        }
      }
    }
    if (tables_ != nullptr) {
      for (const auto& rm : tables_->requires_methods) {
        if (rm.class_name == fn.class_name && rm.method == fn.func_name) {
          for (const std::string& m : rm.mutexes) {
            fn.locks.push_back(CanonMutex(m, fn.class_name, tables_));
          }
        }
      }
    }
    return fn;
  }

  // Comma-split arguments of the paren group opening at p[open],
  // each joined from its token texts.
  static std::vector<std::string> MacroArgs(const std::vector<Token>& p,
                                            size_t open) {
    std::vector<std::string> args;
    std::string cur;
    int depth = 0;
    for (size_t i = open; i < p.size(); ++i) {
      const std::string& s = p[i].text;
      if (s == "(" || s == "{" || s == "[") {
        if (++depth == 1) continue;
      } else if (s == ")" || s == "}" || s == "]") {
        if (--depth == 0) break;
      } else if (s == "," && depth == 1) {
        if (!cur.empty()) args.push_back(cur);
        cur.clear();
        continue;
      }
      cur += s;
    }
    if (!cur.empty()) args.push_back(cur);
    return args;
  }

  // ---- statement-end declaration harvesting --------------------------

  void EndStatement() {
    if (pending_.empty()) return;
    const Scope& cur = stack_.back();
    if (cur.kind == Scope::Kind::kClass && decls_ != nullptr) {
      HarvestMemberDecl(cur.class_name);
    }
    if (flow_ != nullptr &&
        (cur.kind == Scope::Kind::kFunction ||
         cur.kind == Scope::Kind::kBlock || cur.kind == Scope::Kind::kFile ||
         cur.kind == Scope::Kind::kNamespace)) {
      HarvestLocalAtomic();
    }
  }

  // Declarator name: last identifier before a top-level '=' (or before
  // the statement end), skipping the "<init>" marker.
  static std::string DeclaratorName(const std::vector<Token>& p) {
    std::string name;
    for (const Token& t : p) {
      if (t.text == "=") break;
      if (t.kind == TokenKind::kIdentifier) name = t.text;
    }
    return name;
  }

  void HarvestMemberDecl(const std::string& class_name) {
    const std::vector<Token>& p = pending_;
    // Member-vs-method shape and the declarator name are judged with
    // annotation-macro groups removed: SGCL_GUARDED_BY(mu_)'s parens
    // must not make a data member look like a method declaration.
    const std::vector<Token> bare =
        StripTemplates(p, /*strip_annotations=*/true);
    bool has_paren = false;
    bool is_atomic = false;
    bool is_mutex = false;
    for (const Token& t : bare) {
      if (t.text == "(") has_paren = true;
      if (t.kind == TokenKind::kIdentifier) {
        if (IsAtomicTypeName(t.text)) is_atomic = true;
        if (IsMutexTypeName(t.text)) is_mutex = true;
      }
    }
    for (size_t i = 0; i < p.size(); ++i) {
      if ((p[i].text == "SGCL_GUARDED_BY" ||
           p[i].text == "SGCL_PT_GUARDED_BY") &&
          i > 0 && p[i - 1].kind == TokenKind::kIdentifier &&
          i + 1 < p.size() && p[i + 1].text == "(") {
        const std::vector<std::string> args = MacroArgs(p, i + 1);
        if (!args.empty()) {
          decls_->guarded_members.push_back(
              {class_name, p[i - 1].text, args[0], is_atomic});
        }
      }
      if ((p[i].text == "SGCL_REQUIRES" ||
           p[i].text == "SGCL_REQUIRES_SHARED") &&
          i + 1 < p.size() && p[i + 1].text == "(") {
        // Out-of-body method declaration: name precedes the first "(".
        std::string method;
        for (size_t j = 0; j + 1 < i; ++j) {
          if (p[j + 1].text == "(" &&
              p[j].kind == TokenKind::kIdentifier) {
            method = p[j].text;
            break;
          }
        }
        if (!method.empty()) {
          decls_->requires_methods.push_back(
              {class_name, method, MacroArgs(p, i + 1)});
        }
      }
    }
    if (has_paren) return;  // method declaration, not a data member
    const std::string name = DeclaratorName(bare);
    if (name.empty()) return;
    if (is_mutex) decls_->mutex_members.push_back(class_name + "::" + name);
    if (is_atomic) decls_->atomic_members.push_back(class_name + "::" + name);
  }

  void HarvestLocalAtomic() {
    bool is_atomic = false;
    bool has_paren = false;
    for (const Token& t : pending_) {
      if (t.text == "(") has_paren = true;
      if (t.kind == TokenKind::kIdentifier && IsAtomicTypeName(t.text)) {
        is_atomic = true;
      }
    }
    if (!is_atomic || has_paren) return;
    const std::string name = DeclaratorName(pending_);
    if (name.empty()) return;
    Scope* fn = EnclosingFunctionMutable();
    if (fn != nullptr) {
      fn->local_atomics.insert(name);
    } else {
      file_atomics_.insert(name);
    }
  }

  // ---- flow rules at an identifier token -----------------------------

  void FlowAtIdent(size_t i) {
    const Token& t = toks_[i];
    const Scope* fn = EnclosingFunction();
    if (fn == nullptr) {
      if (hot_path_ && t.text == "volatile") EmitVolatile(t);
      return;
    }
    if (IsLockHolderType(t.text)) {
      HandleLockDecl(i);
      return;
    }
    if ((t.text == "lock" || t.text == "unlock") && i >= 2 &&
        TextIs(toks_[i - 1], ".") &&
        toks_[i - 2].kind == TokenKind::kIdentifier && i + 2 < toks_.size() &&
        TextIs(toks_[i + 1], "(") && TextIs(toks_[i + 2], ")")) {
      HandleLockCall(toks_[i - 2].text, t.text == "lock", t.line);
      return;
    }
    if (hot_path_) {
      if (t.text == "volatile") {
        EmitVolatile(t);
        return;
      }
      if ((t.text == "load" || t.text == "store") && i >= 2 &&
          (TextIs(toks_[i - 1], ".") || TextIs(toks_[i - 1], "->")) &&
          toks_[i - 2].kind == TokenKind::kIdentifier) {
        CheckAtomicOrder(i, fn);
      }
    }
    CheckGuardedAccess(i, fn);
  }

  void HandleLockDecl(size_t i) {
    size_t j = i + 1;
    if (j < toks_.size() && TextIs(toks_[j], "<")) j = SkipAngles(toks_, j);
    if (j + 1 >= toks_.size() ||
        toks_[j].kind != TokenKind::kIdentifier ||
        (!TextIs(toks_[j + 1], "(") && !TextIs(toks_[j + 1], "{"))) {
      return;  // not a variable declaration (template arg, sizeof, ...)
    }
    const std::string var = toks_[j].text;
    // Collect the constructor arguments.
    std::vector<Token> group;
    const std::string open = toks_[j + 1].text;
    const std::string close = open == "(" ? ")" : "}";
    int depth = 0;
    size_t k = j + 1;
    for (; k < toks_.size(); ++k) {
      if (toks_[k].text == open) ++depth;
      if (toks_[k].text == close && --depth == 0) break;
      group.push_back(toks_[k]);
    }
    if (!group.empty()) group.erase(group.begin());  // drop the opener
    std::vector<std::string> mutexes;
    bool deferred = false;
    const Scope* fn = EnclosingFunction();
    const std::string cls = fn != nullptr ? fn->class_name : std::string();
    std::string cur;
    int adepth = 0;
    const auto flush = [&]() {
      if (cur.empty()) return;
      if (cur.find("defer_lock") != std::string::npos) {
        deferred = true;
      } else if (cur.find("adopt_lock") == std::string::npos &&
                 cur.find("try_to_lock") == std::string::npos) {
        mutexes.push_back(CanonMutex(cur, cls, tables_));
      }
      cur.clear();
    };
    for (const Token& g : group) {
      const std::string& s = g.text;
      if (s == "(" || s == "{" || s == "[" || s == "<") ++adepth;
      if (s == ")" || s == "}" || s == "]" || s == ">") --adepth;
      if (s == "," && adepth == 0) {
        flush();
        continue;
      }
      cur += s;
    }
    flush();
    Scope* owner = EnclosingFunctionMutable();
    if (owner != nullptr) owner->lock_vars[var] = mutexes;
    if (!deferred) AcquireAll(mutexes, toks_[i].line);
  }

  void AcquireAll(const std::vector<std::string>& mutexes, int line) {
    for (const std::string& m : mutexes) {
      if (m.empty()) continue;
      for (const std::string& h : HeldLocks()) {
        if (h != m && path_ != nullptr) {
          flow_->edges.push_back({h, m, *path_, line});
        }
      }
      stack_.back().locks.push_back(m);
    }
  }

  void HandleLockCall(const std::string& receiver, bool acquire, int line) {
    // Resolve: RAII lock variable first, then a known mutex member.
    std::vector<std::string> mutexes;
    Scope* fn = EnclosingFunctionMutable();
    if (fn != nullptr) {
      auto it = fn->lock_vars.find(receiver);
      if (it != fn->lock_vars.end()) mutexes = it->second;
    }
    if (mutexes.empty()) {
      const std::string cls = fn != nullptr ? fn->class_name : std::string();
      const std::string canon = CanonMutex(receiver, cls, tables_);
      if (std::binary_search(tables_->mutex_members.begin(),
                             tables_->mutex_members.end(), canon)) {
        mutexes.push_back(canon);
      }
    }
    if (mutexes.empty()) return;
    if (acquire) {
      AcquireAll(mutexes, line);
      return;
    }
    for (const std::string& m : mutexes) {
      for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
        auto pos = std::find(it->locks.begin(), it->locks.end(), m);
        if (pos != it->locks.end()) {
          it->locks.erase(pos);
          break;
        }
      }
    }
  }

  bool Holds(const std::string& canon_mutex) const {
    for (const Scope& s : stack_) {
      if (std::find(s.locks.begin(), s.locks.end(), canon_mutex) !=
          s.locks.end()) {
        return true;
      }
    }
    return false;
  }

  // True when toks_[i] names a member of the current object: a bare
  // identifier, or one reached through `this->` / `this.`.
  bool IsSelfAccess(size_t i) const {
    if (i == 0) return true;
    const std::string& prev = toks_[i - 1].text;
    if (prev == "." || prev == "->") {
      return i >= 2 && TextIs(toks_[i - 2], "this");
    }
    if (prev == "::") return false;  // qualified name, not an access
    return true;
  }

  // Explicit memory-order argument in the call group starting at the
  // "(" after a `.load` / `.store` style call?
  static bool HasMemoryOrderArg(const std::vector<Token>& toks, size_t open) {
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
      const std::string& s = toks[i].text;
      if (s == "(") ++depth;
      if (s == ")" && --depth == 0) break;
      if (toks[i].kind == TokenKind::kIdentifier &&
          s.rfind("memory_order", 0) == 0) {
        return true;
      }
    }
    return false;
  }

  void CheckGuardedAccess(size_t i, const Scope* fn) {
    if (tables_ == nullptr || fn->ctor_dtor) return;
    const Token& t = toks_[i];
    const FileDecls::GuardedMember* gm = nullptr;
    for (const auto& g : tables_->guarded_members) {
      if (g.member == t.text && g.class_name == fn->class_name) {
        gm = &g;
        break;
      }
    }
    if (gm == nullptr || !IsSelfAccess(i)) return;
    const std::string guard = CanonMutex(gm->mutex, fn->class_name, tables_);
    if (Holds(guard)) return;
    if (gm->atomic && i + 2 < toks_.size() &&
        (TextIs(toks_[i + 1], ".") || TextIs(toks_[i + 1], "->")) &&
        toks_[i + 2].kind == TokenKind::kIdentifier) {
      // Documented-relaxed escape hatch: an atomic guarded member used
      // with an explicit memory order is a deliberate unlocked access.
      size_t open = i + 3;
      if (open < toks_.size() && TextIs(toks_[open], "(") &&
          HasMemoryOrderArg(toks_, open)) {
        return;
      }
    }
    const std::pair<int, std::string> key{t.line, t.text};
    if (!reported_r8_.insert(key).second) return;
    flow_->findings.push_back(MakeFinding(
        *path_, t.line, "sgcl-R8", Severity::kError,
        StrFormat("'%s' is guarded by '%s' but accessed without holding it; "
                  "take a lock_guard/unique_lock/scoped_lock on it or "
                  "annotate the method SGCL_REQUIRES(%s)",
                  t.text.c_str(), guard.c_str(), gm->mutex.c_str())));
  }

  void CheckAtomicOrder(size_t i, const Scope* fn) {
    const Token& t = toks_[i];
    const std::string& recv = toks_[i - 2].text;
    bool is_atomic = false;
    if (!fn->class_name.empty() && tables_ != nullptr &&
        std::binary_search(tables_->atomic_members.begin(),
                           tables_->atomic_members.end(),
                           fn->class_name + "::" + recv)) {
      is_atomic = true;
    }
    for (auto it = stack_.rbegin(); !is_atomic && it != stack_.rend(); ++it) {
      if (it->local_atomics.count(recv) != 0) is_atomic = true;
    }
    if (file_atomics_.count(recv) != 0) is_atomic = true;
    if (!is_atomic) return;
    if (i + 1 >= toks_.size() || !TextIs(toks_[i + 1], "(")) return;
    // Count top-level arguments of the call.
    int depth = 0;
    int args = 0;
    int commas = 0;
    size_t close = toks_.size() - 1;
    for (size_t k = i + 1; k < toks_.size(); ++k) {
      const std::string& s = toks_[k].text;
      if (s == "(") {
        if (++depth == 1) continue;
      }
      if (s == ")" && --depth == 0) {
        close = k;
        break;
      }
      if (s == "," && depth == 1) {
        ++commas;
        continue;
      }
      if (args == 0) args = 1;
    }
    if (args != 0) args += commas;
    const bool missing = t.text == "load" ? args == 0 : args == 1;
    if (!missing) return;
    Finding f = MakeFinding(
        *path_, t.line, "sgcl-R10", Severity::kWarning,
        StrFormat("atomic %s() without an explicit memory order "
                  "defaults to seq_cst on a hot path; spell the "
                  "ordering (std::memory_order_seq_cst if that is "
                  "really what you want)",
                  t.text.c_str()));
    const std::string insert = t.text == "load"
                                   ? "std::memory_order_seq_cst"
                                   : ", std::memory_order_seq_cst";
    f.fixes.push_back({toks_[close].line, toks_[close].col, 0, insert});
    flow_->findings.push_back(std::move(f));
  }

  void EmitVolatile(const Token& t) {
    flow_->findings.push_back(MakeFinding(
        *path_, t.line, "sgcl-R10", Severity::kWarning,
        "'volatile' is not a synchronization primitive; use std::atomic "
        "with an explicit memory order"));
  }

  const std::vector<Token>& toks_;
  const GlobalTables* tables_;
  const std::string* path_;
  FileDecls* decls_;
  FlowResult* flow_;
  bool hot_path_ = false;
  std::vector<Scope> stack_;
  std::vector<Token> pending_;
  std::set<std::string> file_atomics_;
  std::set<std::pair<int, std::string>> reported_r8_;
};

}  // namespace

FileDecls ExtractDecls(const std::string& content) {
  FileDecls decls;
  {
    std::vector<std::string> raw, scrubbed;
    internal::ScrubLines(content, &raw, &scrubbed, nullptr);
    std::set<std::string> names;
    for (const std::string& line : scrubbed) {
      internal::CollectFallibleNames(line, &names);
    }
    decls.fallible_names.assign(names.begin(), names.end());
  }
  const std::vector<Token> toks = Tokenize(content);
  Walker(toks, nullptr, nullptr, &decls, nullptr).Run();
  return decls;
}

GlobalTables BuildTables(const std::vector<FileDecls>& decls) {
  GlobalTables t;
  for (const FileDecls& d : decls) {
    t.fallible_names.insert(t.fallible_names.end(), d.fallible_names.begin(),
                            d.fallible_names.end());
    t.guarded_members.insert(t.guarded_members.end(),
                             d.guarded_members.begin(),
                             d.guarded_members.end());
    t.requires_methods.insert(t.requires_methods.end(),
                              d.requires_methods.begin(),
                              d.requires_methods.end());
    t.mutex_members.insert(t.mutex_members.end(), d.mutex_members.begin(),
                           d.mutex_members.end());
    t.atomic_members.insert(t.atomic_members.end(), d.atomic_members.begin(),
                            d.atomic_members.end());
  }
  const auto uniq = [](std::vector<std::string>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  uniq(&t.fallible_names);
  uniq(&t.mutex_members);
  uniq(&t.atomic_members);
  const auto gm_key = [](const FileDecls::GuardedMember& g) {
    return g.class_name + "\x1f" + g.member + "\x1f" + g.mutex +
           (g.atomic ? "\x1f" "a" : "");
  };
  std::sort(t.guarded_members.begin(), t.guarded_members.end(),
            [&](const auto& a, const auto& b) { return gm_key(a) < gm_key(b); });
  t.guarded_members.erase(
      std::unique(t.guarded_members.begin(), t.guarded_members.end(),
                  [&](const auto& a, const auto& b) {
                    return gm_key(a) == gm_key(b);
                  }),
      t.guarded_members.end());
  const auto rm_key = [](const FileDecls::RequiresMethod& r) {
    std::string k = r.class_name + "\x1f" + r.method;
    for (const std::string& m : r.mutexes) k += "\x1f" + m;
    return k;
  };
  std::sort(t.requires_methods.begin(), t.requires_methods.end(),
            [&](const auto& a, const auto& b) { return rm_key(a) < rm_key(b); });
  t.requires_methods.erase(
      std::unique(t.requires_methods.begin(), t.requires_methods.end(),
                  [&](const auto& a, const auto& b) {
                    return rm_key(a) == rm_key(b);
                  }),
      t.requires_methods.end());
  return t;
}

uint32_t GlobalTables::Digest() const {
  std::string s = StrFormat("sgcl-lint-v%d\n", kEngineVersion);
  for (const std::string& n : fallible_names) s += "f:" + n + "\n";
  for (const auto& g : guarded_members) {
    s += StrFormat("g:%s:%s:%s:%d\n", g.class_name.c_str(), g.member.c_str(),
                   g.mutex.c_str(), g.atomic ? 1 : 0);
  }
  for (const auto& r : requires_methods) {
    s += "r:" + r.class_name + ":" + r.method;
    for (const std::string& m : r.mutexes) s += ":" + m;
    s += "\n";
  }
  for (const std::string& n : mutex_members) s += "m:" + n + "\n";
  for (const std::string& n : atomic_members) s += "a:" + n + "\n";
  return Crc32(s);
}

namespace internal {

bool IsHotPathFile(const std::string& path) {
  static const char* const kPrefixes[] = {
      "src/serve/",
      "src/data/prefetcher.",
      "src/data/shard_store.",
      "src/common/parallel.",
      "src/common/trace.",
      "src/common/metrics.",
      "src/common/http_server.",
  };
  for (const char* p : kPrefixes) {
    if (path.rfind(p, 0) == 0) return true;
  }
  return false;
}

FlowResult RunFlowPass(const std::string& path,
                       const std::vector<Token>& tokens,
                       const GlobalTables& tables) {
  FlowResult result;
  Walker(tokens, &tables, &path, nullptr, &result).Run();
  return result;
}

}  // namespace internal

std::vector<Finding> LockCycleFindings(const std::vector<LockEdge>& edges) {
  // Adjacency over unique (from, to) pairs; every concrete site of a
  // pair that lies on a cycle is reported.
  std::map<std::string, std::set<std::string>> adj;
  for (const LockEdge& e : edges) {
    if (!e.from.empty() && !e.to.empty() && e.from != e.to) {
      adj[e.from].insert(e.to);
    }
  }
  // Path from -> to (BFS, lexicographically stable), empty if none.
  const auto path_between = [&](const std::string& from,
                                const std::string& to) {
    std::map<std::string, std::string> parent;
    std::queue<std::string> q;
    q.push(from);
    parent[from] = from;
    while (!q.empty()) {
      const std::string cur = q.front();
      q.pop();
      if (cur == to) break;
      auto it = adj.find(cur);
      if (it == adj.end()) continue;
      for (const std::string& next : it->second) {
        if (parent.insert({next, cur}).second) q.push(next);
      }
    }
    std::vector<std::string> path;
    if (parent.count(to) == 0) return path;
    for (std::string cur = to; cur != from; cur = parent[cur]) {
      path.push_back(cur);
    }
    path.push_back(from);
    std::reverse(path.begin(), path.end());
    return path;
  };
  std::vector<Finding> findings;
  std::set<std::string> seen;
  for (const LockEdge& e : edges) {
    if (e.from.empty() || e.to.empty() || e.from == e.to) continue;
    const std::vector<std::string> back = path_between(e.to, e.from);
    if (back.empty()) continue;  // edge not on a cycle
    std::string cycle = e.from;
    for (const std::string& n : back) cycle += " -> " + n;
    const std::string key =
        StrFormat("%s:%d:%s>%s", e.file.c_str(), e.line, e.from.c_str(),
                  e.to.c_str());
    if (!seen.insert(key).second) continue;
    findings.push_back(MakeFinding(
        e.file, e.line, "sgcl-R9", Severity::kError,
        StrFormat("acquiring '%s' while holding '%s' closes a lock-order "
                  "cycle (%s); pick one global acquisition order, or "
                  "suppress this edge with NOLINT(sgcl-R9) after review",
                  e.to.c_str(), e.from.c_str(), cycle.c_str())));
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.message < b.message;
            });
  return findings;
}

}  // namespace sgcl::lint
