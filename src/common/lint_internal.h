// Internals shared between the lint engine's two translation units:
// lint.cc (line pass, suppressions, orchestration) and lint_flow.cc
// (tokenizer, declaration tables, flow pass). Not part of the public
// API — include common/lint.h instead.
#ifndef SGCL_COMMON_LINT_INTERNAL_H_
#define SGCL_COMMON_LINT_INTERNAL_H_

#include <set>
#include <string>
#include <vector>

#include "common/lint.h"

namespace sgcl::lint::internal {

// Splits `content` into lines and blanks out comments, string literals
// (including raw strings), and char literals, preserving line structure
// and length so column-free line reporting stays accurate. `raw` gets
// the untouched lines (NOLINT directives live inside comments).
// `comment_cols`, when non-null, receives per line the column where a
// trailing // comment starts, or -1 when the line has none — the
// stale-NOLINT check uses it to tell a real suppression comment from
// prose that merely mentions NOLINT.
void ScrubLines(const std::string& content, std::vector<std::string>* raw,
                std::vector<std::string>* scrubbed,
                std::vector<int>* comment_cols);

// Collects names of functions declared to return Status or Result<...>
// on one (scrubbed) line. Line-local by design: a declaration whose
// template arguments span lines is skipped (documented limitation).
void CollectFallibleNames(const std::string& scrubbed_line,
                          std::set<std::string>* names);

// Pre-suppression output of the flow pass over one file.
struct FlowResult {
  std::vector<Finding> findings;  // sgcl-R8 and sgcl-R10
  std::vector<LockEdge> edges;    // raw acquisition edges for sgcl-R9
};

FlowResult RunFlowPass(const std::string& path,
                       const std::vector<Token>& tokens,
                       const GlobalTables& tables);

// Files where sgcl-R10 (atomics hygiene) applies: the serving layer,
// the streaming data plane, and the concurrent common/ primitives.
bool IsHotPathFile(const std::string& path);

}  // namespace sgcl::lint::internal

#endif  // SGCL_COMMON_LINT_INTERNAL_H_
