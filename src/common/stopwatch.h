// Wall-clock stopwatch for coarse phase timing in examples and benches.
#ifndef SGCL_COMMON_STOPWATCH_H_
#define SGCL_COMMON_STOPWATCH_H_

#include <chrono>

namespace sgcl {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sgcl

#endif  // SGCL_COMMON_STOPWATCH_H_
