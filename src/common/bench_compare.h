// Loading and diffing google-benchmark JSON result files — the library
// half of tools/bench_diff, the CI perf-regression gate.
//
// Matching model: benchmarks pair by exact "name". Files written with
// --benchmark_repetitions carry both per-repetition entries and
// aggregates; to compare one stable number per benchmark family, loading
// keeps the "median" aggregate when a family has aggregates and the
// plain iteration entry otherwise (mean/stddev/cv aggregates are
// skipped). Times normalize to nanoseconds using each entry's time_unit.
#ifndef SGCL_COMMON_BENCH_COMPARE_H_
#define SGCL_COMMON_BENCH_COMPARE_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace sgcl {

struct BenchEntry {
  std::string name;      // full benchmark name, e.g. "BM_X/16_median"
  std::string run_name;  // family name without the aggregate suffix
  double real_ns = 0.0;
  double cpu_ns = 0.0;
};

// Parses a google-benchmark --benchmark_format=json file into comparable
// entries (see matching model above). InvalidArgument when the file is
// not a benchmark result file.
Result<std::vector<BenchEntry>> LoadBenchmarkJson(const std::string& path);

struct BenchDelta {
  std::string name;  // run_name shared by both sides
  double base_ns = 0.0;
  double current_ns = 0.0;
  // Signed percent change of real time: positive = current is slower.
  double pct = 0.0;
};

struct BenchComparison {
  std::vector<BenchDelta> matched;        // sorted by name
  std::vector<std::string> only_base;     // names missing from current
  std::vector<std::string> only_current;  // names missing from baseline
};

// Pairs entries by run_name and computes per-benchmark real-time deltas.
BenchComparison CompareBenchmarks(const std::vector<BenchEntry>& base,
                                  const std::vector<BenchEntry>& current);

// Human-readable delta table plus unmatched-name notes, one line per
// benchmark; `threshold_pct` rows at or past the threshold are flagged.
std::string FormatComparison(const BenchComparison& comparison,
                             double threshold_pct);

// Count of matched benchmarks whose slowdown is >= threshold_pct.
int CountRegressions(const BenchComparison& comparison, double threshold_pct);

}  // namespace sgcl

#endif  // SGCL_COMMON_BENCH_COMPARE_H_
