// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte ranges.
//
// Used to guard checkpoint sections against silent bit rot: each section
// of the v2 checkpoint format stores the CRC of its payload, and the
// loader rejects any section whose stored and recomputed CRCs disagree
// (nn/checkpoint.h). Table-driven, byte-at-a-time — checkpoint payloads
// are a few MB at most, so throughput is irrelevant next to the fsync.
#ifndef SGCL_COMMON_CRC32_H_
#define SGCL_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace sgcl {

// CRC of `size` bytes at `data`. Pass a previous result as `seed` to
// checksum a logical stream in pieces: Crc32(b, nb, Crc32(a, na)).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(const std::string& bytes, uint32_t seed = 0) {
  return Crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace sgcl

#endif  // SGCL_COMMON_CRC32_H_
