#include "common/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.h"
#include "common/string_util.h"

namespace sgcl {

bool JsonValue::AsBool() const {
  SGCL_CHECK(is_bool());
  return bool_;
}

double JsonValue::AsDouble() const {
  SGCL_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::AsString() const {
  SGCL_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  SGCL_CHECK(is_array());
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  SGCL_CHECK(is_object());
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->string_ : fallback;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->number_ : fallback;
}

// Hand-rolled recursive descent over the input buffer. Errors carry a
// byte offset; that is enough to locate problems in machine-written JSON
// (the only kind we parse) without tracking line/column.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    SGCL_RETURN_NOT_OK(ParseValue(&value, /*depth=*/0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at offset %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        if (!ConsumeLiteral("true")) return Error("invalid literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("invalid literal");
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("invalid literal");
        out->type_ = JsonValue::Type::kNull;
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      SGCL_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      JsonValue value;
      SGCL_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object_[key] = std::move(value);
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      SGCL_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::OK();
      }
      return Error("expected ',' or ']' in array");
    }
  }

  // Appends `cp` to `out` as UTF-8.
  static void AppendCodepoint(uint32_t cp, std::string* out) {
    if (cp <= 0x7F) {
      out->push_back(static_cast<char>(cp));
    } else if (cp <= 0x7FF) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp <= 0xFFFF) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          SGCL_RETURN_NOT_OK(ParseHex4(&cp));
          // Combine UTF-16 surrogate pairs; a lone surrogate degrades to
          // the replacement character rather than failing the file.
          if (cp >= 0xD800 && cp <= 0xDBFF &&
              text_.compare(pos_, 2, "\\u") == 0) {
            pos_ += 2;
            uint32_t low = 0;
            SGCL_RETURN_NOT_OK(ParseHex4(&low));
            if (low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              cp = 0xFFFD;
            }
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          AppendCodepoint(cp, out);
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Error("malformed number '" + token + "'");
    }
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = v;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  return JsonParser(text).Parse();
}

Result<JsonValue> ParseJsonFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open JSON file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("error reading JSON file " + path);
  Result<JsonValue> parsed = JsonValue::Parse(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace sgcl
