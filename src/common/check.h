// Invariant-checking macros.
//
// SGCL_CHECK* macros abort the process with a diagnostic when an internal
// invariant is violated. They are for programming errors only; recoverable
// conditions (bad user input, malformed configs) must use Status/Result
// from "common/status.h" instead.
#ifndef SGCL_COMMON_CHECK_H_
#define SGCL_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace sgcl::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "SGCL_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace sgcl::internal

#define SGCL_CHECK(expr)                                   \
  do {                                                     \
    if (!(expr)) {                                         \
      ::sgcl::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                      \
  } while (0)

#define SGCL_CHECK_OP(a, op, b) SGCL_CHECK((a)op(b))
#define SGCL_CHECK_EQ(a, b) SGCL_CHECK_OP(a, ==, b)
#define SGCL_CHECK_NE(a, b) SGCL_CHECK_OP(a, !=, b)
#define SGCL_CHECK_LT(a, b) SGCL_CHECK_OP(a, <, b)
#define SGCL_CHECK_LE(a, b) SGCL_CHECK_OP(a, <=, b)
#define SGCL_CHECK_GT(a, b) SGCL_CHECK_OP(a, >, b)
#define SGCL_CHECK_GE(a, b) SGCL_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define SGCL_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define SGCL_DCHECK(expr) SGCL_CHECK(expr)
#endif

#endif  // SGCL_COMMON_CHECK_H_
