#include "common/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/json.h"
#include "common/string_util.h"

namespace sgcl {
namespace {

// google-benchmark time_unit values.
double UnitToNs(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

}  // namespace

Result<std::vector<BenchEntry>> LoadBenchmarkJson(const std::string& path) {
  SGCL_ASSIGN_OR_RETURN(const JsonValue root, ParseJsonFile(path));
  const JsonValue* benchmarks = root.Find("benchmarks");
  if (benchmarks == nullptr || !benchmarks->is_array()) {
    return Status::InvalidArgument(
        path + ": not a google-benchmark JSON file (no \"benchmarks\" array)");
  }
  // First pass: which families have aggregate entries at all.
  std::map<std::string, bool> family_has_aggregates;
  for (const JsonValue& b : benchmarks->AsArray()) {
    if (!b.is_object()) continue;
    const std::string run_name = b.GetString("run_name", b.GetString("name"));
    if (!b.GetString("aggregate_name").empty()) {
      family_has_aggregates[run_name] = true;
    }
  }
  std::vector<BenchEntry> entries;
  for (const JsonValue& b : benchmarks->AsArray()) {
    if (!b.is_object()) continue;
    const std::string aggregate = b.GetString("aggregate_name");
    const std::string run_name = b.GetString("run_name", b.GetString("name"));
    if (family_has_aggregates.count(run_name) > 0) {
      if (aggregate != "median") continue;
    } else if (b.GetString("run_type", "iteration") != "iteration") {
      continue;
    }
    BenchEntry entry;
    entry.name = b.GetString("name");
    entry.run_name = run_name;
    const double scale = UnitToNs(b.GetString("time_unit", "ns"));
    entry.real_ns = b.GetDouble("real_time") * scale;
    entry.cpu_ns = b.GetDouble("cpu_time") * scale;
    if (entry.name.empty()) continue;
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    return Status::InvalidArgument(path +
                                   ": no comparable benchmark entries");
  }
  return entries;
}

BenchComparison CompareBenchmarks(const std::vector<BenchEntry>& base,
                                  const std::vector<BenchEntry>& current) {
  std::map<std::string, const BenchEntry*> base_by_name;
  for (const BenchEntry& e : base) base_by_name[e.run_name] = &e;
  std::map<std::string, const BenchEntry*> current_by_name;
  for (const BenchEntry& e : current) current_by_name[e.run_name] = &e;

  BenchComparison comparison;
  for (const auto& [name, b] : base_by_name) {
    const auto it = current_by_name.find(name);
    if (it == current_by_name.end()) {
      comparison.only_base.push_back(name);
      continue;
    }
    BenchDelta delta;
    delta.name = name;
    delta.base_ns = b->real_ns;
    delta.current_ns = it->second->real_ns;
    delta.pct = b->real_ns > 0.0
                    ? 100.0 * (it->second->real_ns - b->real_ns) / b->real_ns
                    : 0.0;
    comparison.matched.push_back(std::move(delta));
  }
  for (const auto& [name, c] : current_by_name) {
    if (base_by_name.count(name) == 0) comparison.only_current.push_back(name);
  }
  return comparison;
}

std::string FormatComparison(const BenchComparison& comparison,
                             double threshold_pct) {
  // Widths sized for typical "BM_Name/256" benchmarks; long names just
  // push their row wider.
  std::string out = StrFormat("%-44s %14s %14s %9s\n", "benchmark",
                              "baseline(ms)", "current(ms)", "delta");
  for (const BenchDelta& d : comparison.matched) {
    const bool flagged = d.pct >= threshold_pct;
    out += StrFormat("%-44s %14.4f %14.4f %+8.2f%%%s\n", d.name.c_str(),
                     d.base_ns * 1e-6, d.current_ns * 1e-6, d.pct,
                     flagged ? "  REGRESSION" : "");
  }
  for (const std::string& name : comparison.only_base) {
    out += StrFormat("%-44s only in baseline (skipped)\n", name.c_str());
  }
  for (const std::string& name : comparison.only_current) {
    out += StrFormat("%-44s only in current (skipped)\n", name.c_str());
  }
  return out;
}

int CountRegressions(const BenchComparison& comparison,
                     double threshold_pct) {
  int regressions = 0;
  for (const BenchDelta& d : comparison.matched) {
    if (d.pct >= threshold_pct) ++regressions;
  }
  return regressions;
}

}  // namespace sgcl
