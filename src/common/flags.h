// Typed command-line flag parsing for tools.
//
// Each flag binds to a caller-owned variable whose initial value is the
// default (shown in --help). Parse() accepts "--name=value" and, for
// bools, bare "--name"; it rejects unknown flags, malformed values, bare
// non-bool flags, positional arguments, and missing required flags with a
// descriptive InvalidArgument instead of silently ignoring them.
//
//   int epochs = 20;
//   std::string data;
//   FlagSet flags("sgcl_cli pretrain");
//   flags.Int("epochs", &epochs, "training epochs");
//   flags.String("data", &data, "dataset path", /*required=*/true);
//   Status st = flags.Parse(argc, argv, /*first=*/2);
//   if (flags.help_requested()) { puts(flags.Help().c_str()); return 0; }
//   if (!st.ok()) { ... }
#ifndef SGCL_COMMON_FLAGS_H_
#define SGCL_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace sgcl {

class FlagSet {
 public:
  // `usage` is the command line shown at the top of Help().
  explicit FlagSet(std::string usage);

  // Registration. `target` must outlive Parse; its current value is the
  // default. Flag names must be unique.
  void String(const std::string& name, std::string* target,
              const std::string& help, bool required = false);
  void Int(const std::string& name, int* target, const std::string& help,
           bool required = false);
  void Int64(const std::string& name, int64_t* target,
             const std::string& help, bool required = false);
  void Uint64(const std::string& name, uint64_t* target,
              const std::string& help, bool required = false);
  void Double(const std::string& name, double* target,
              const std::string& help, bool required = false);
  void Bool(const std::string& name, bool* target, const std::string& help);

  // Parses argv[first..argc). On success every flag's target holds its
  // parsed or default value. "--help" anywhere stops parsing, sets
  // help_requested(), and returns OK without enforcing required flags.
  Status Parse(int argc, char** argv, int first);

  bool help_requested() const { return help_requested_; }

  // Whether `name` was explicitly set by the parsed command line.
  bool IsSet(const std::string& name) const;

  // Auto-generated usage text: one line per flag with type, default, and
  // requiredness.
  std::string Help() const;

 private:
  enum class Type { kString, kInt, kInt64, kUint64, kDouble, kBool };
  struct Flag {
    std::string name;
    Type type;
    void* target;
    std::string help;
    std::string default_str;
    bool required = false;
    bool set = false;
  };

  void Register(const std::string& name, Type type, void* target,
                const std::string& help, bool required,
                std::string default_str);
  Flag* Find(const std::string& name);
  const Flag* Find(const std::string& name) const;
  Status SetValue(Flag* flag, const std::string& value, bool has_value);

  std::string usage_;
  std::vector<Flag> flags_;
  bool help_requested_ = false;
};

}  // namespace sgcl

#endif  // SGCL_COMMON_FLAGS_H_
