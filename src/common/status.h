// Arrow-style Status / Result error model.
//
// Library functions that can fail on user input return Status (or Result<T>
// when they produce a value). Internal invariant violations use SGCL_CHECK.
// The library never throws.
#ifndef SGCL_COMMON_STATUS_H_
#define SGCL_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace sgcl {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kUnavailable = 8,
};

// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

// A cheap, copyable success-or-error value. [[nodiscard]] on the class
// makes the compiler flag any call whose returned Status is silently
// dropped — the core of the error model (lint rule sgcl-R1 backstops the
// cases the compiler cannot see).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  // Transient overload / shutting down; callers may retry after backoff
  // (the serving layer maps this to HTTP 503 + Retry-After).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error. Accessing the value of an errored Result is a fatal
// programming error; callers must test ok() (or use ValueOrDie in tests).
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit
  // conversions so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    SGCL_CHECK(!status_.ok());  // A Result built from a Status must be an error.
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  const T& value() const& {
    SGCL_CHECK(ok());
    return *value_;
  }
  T& value() & {
    SGCL_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    SGCL_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sgcl

// Propagates a non-OK Status out of the current function.
#define SGCL_RETURN_NOT_OK(expr)          \
  do {                                    \
    ::sgcl::Status _st = (expr);          \
    if (!_st.ok()) return _st;            \
  } while (0)

// Evaluates a Result expression, propagating the error or binding the value.
#define SGCL_ASSIGN_OR_RETURN(lhs, rexpr)      \
  auto SGCL_CONCAT_(_res_, __LINE__) = (rexpr); \
  if (!SGCL_CONCAT_(_res_, __LINE__).ok())      \
    return SGCL_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(SGCL_CONCAT_(_res_, __LINE__)).value()

#define SGCL_CONCAT_IMPL_(a, b) a##b
#define SGCL_CONCAT_(a, b) SGCL_CONCAT_IMPL_(a, b)

#endif  // SGCL_COMMON_STATUS_H_
