// Minimal leveled logger writing to stderr.
//
// Usage: SGCL_LOG(INFO) << "epoch " << e << " loss " << loss;
// The global threshold defaults to INFO and can be raised (e.g. in benches)
// via SetLogLevel.
#ifndef SGCL_COMMON_LOGGING_H_
#define SGCL_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace sgcl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sgcl

#define SGCL_LOG_DEBUG ::sgcl::LogLevel::kDebug
#define SGCL_LOG_INFO ::sgcl::LogLevel::kInfo
#define SGCL_LOG_WARNING ::sgcl::LogLevel::kWarning
#define SGCL_LOG_ERROR ::sgcl::LogLevel::kError

#define SGCL_LOG(severity)                                              \
  ::sgcl::internal::LogMessage(SGCL_LOG_##severity, __FILE__, __LINE__) \
      .stream()

#endif  // SGCL_COMMON_LOGGING_H_
