// Minimal leveled logger with pluggable sinks.
//
// Usage: SGCL_LOG(INFO) << "epoch " << e << " loss " << loss;
// The global threshold defaults to INFO and can be raised (e.g. in benches)
// via SetLogLevel.
//
// Records always go to stderr in the classic "[I file:line] msg" form;
// additional sinks can be attached with AddLogSink. JsonlLogSink writes
// one structured JSON object per record (run id, monotonic time, wall
// time, dense thread id, level, source, message) so log lines correlate
// with the metrics registry and trace spans of the same run: thread ids
// share TraceCollector's dense numbering and timestamps share its
// monotonic epoch, while the run id (SetRunId) is stamped on all three
// export formats.
#ifndef SGCL_COMMON_LOGGING_H_
#define SGCL_COMMON_LOGGING_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace sgcl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Stable single-character / full names for a level ("I" / "info").
const char* LogLevelLetter(LogLevel level);
const char* LogLevelName(LogLevel level);

// Process-wide run correlation id, stamped on structured log records and
// surfaced by the telemetry endpoints. Empty until a tool sets it.
void SetRunId(const std::string& run_id);
std::string GetRunId();

// A fully-formed log record as handed to sinks (threshold already
// applied).
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  const char* file = "";  // __FILE__ of the call site
  int line = 0;
  int tid = 0;         // TraceCollector dense thread id
  int64_t mono_us = 0; // microseconds on the TraceCollector epoch
  int64_t wall_ms = 0; // system_clock milliseconds since the Unix epoch
  std::string run_id;  // GetRunId() at record time
  std::string message;
};

// Sink interface. Write may be called concurrently from any thread;
// implementations synchronize internally.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

// Attach / detach a sink (not owned; detach before destroying it).
void AddLogSink(LogSink* sink);
void RemoveLogSink(LogSink* sink);

// Structured JSONL file sink. Open() appends to `path` (so multiple runs
// can share one file, distinguished by run_id) and fails fast with
// InvalidArgument when the path is unwritable. Each record is one line:
// {"run_id":...,"t_mono_us":...,"t_wall_ms":...,"tid":...,"level":...,
//  "src":"file:line","msg":...}
class JsonlLogSink : public LogSink {
 public:
  static Result<std::unique_ptr<JsonlLogSink>> Open(const std::string& path);
  ~JsonlLogSink() override;

  void Write(const LogRecord& record) override;

 private:
  JsonlLogSink(std::ofstream out, std::string path);

  std::mutex mu_;
  std::ofstream out_ SGCL_GUARDED_BY(mu_);
  std::string path_;
};

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace sgcl

#define SGCL_LOG_DEBUG ::sgcl::LogLevel::kDebug
#define SGCL_LOG_INFO ::sgcl::LogLevel::kInfo
#define SGCL_LOG_WARNING ::sgcl::LogLevel::kWarning
#define SGCL_LOG_ERROR ::sgcl::LogLevel::kError

#define SGCL_LOG(severity)                                              \
  ::sgcl::internal::LogMessage(SGCL_LOG_##severity, __FILE__, __LINE__) \
      .stream()

#endif  // SGCL_COMMON_LOGGING_H_
