#include "common/trace.h"

#include <algorithm>
#include <fstream>

#include "common/string_util.h"

namespace sgcl {
namespace {

std::atomic<int> g_next_thread_id{0};

int AssignThreadId() {
  thread_local int id = g_next_thread_id.fetch_add(1);
  return id;
}

}  // namespace

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now()) {}

void TraceCollector::Record(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<TraceCollector::Event> TraceCollector::Events() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.dur_us > b.dur_us;
            });
  return events;
}

std::string TraceCollector::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : Events()) {
    if (!first) out += ',';
    first = false;
    out += StrFormat(
        "{\"name\":\"%s\",\"cat\":\"sgcl\",\"ph\":\"X\",\"ts\":%lld,"
        "\"dur\":%lld,\"pid\":0,\"tid\":%d}",
        JsonEscape(e.name).c_str(), static_cast<long long>(e.start_us),
        static_cast<long long>(e.dur_us), e.tid);
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceCollector::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open trace file " + path);
  }
  out << ToChromeTraceJson() << '\n';
  out.flush();
  if (!out) return Status::Internal("short write to trace file " + path);
  return Status::OK();
}

int64_t TraceCollector::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int TraceCollector::CurrentThreadId() { return AssignThreadId(); }

TraceCollector& TraceCollector::Global() {
  // NOLINTNEXTLINE(sgcl-R5): intentionally leaked singleton
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

TraceSpan::~TraceSpan() {
  if (!tracing_ && counter_ == nullptr) return;
  TraceCollector& collector = TraceCollector::Global();
  const int64_t end_us = collector.NowUs();
  if (counter_ != nullptr) counter_->Increment(end_us - start_us_);
  // Spans that began before Enable() (or after a disable) are dropped
  // rather than recorded with a bogus duration.
  if (tracing_ && collector.enabled()) {
    TraceCollector::Event event;
    event.name = name_;
    event.tid = TraceCollector::CurrentThreadId();
    event.start_us = start_us_;
    event.dur_us = end_us - start_us_;
    collector.Record(std::move(event));
  }
}

}  // namespace sgcl
