#include "common/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "common/string_util.h"

namespace sgcl {
namespace {

std::atomic<int> g_next_thread_id{0};

int AssignThreadId() {
  thread_local int id = g_next_thread_id.fetch_add(1);
  return id;
}

thread_local TraceContext t_ambient_context;  // {0,0} == untraced

// splitmix64 finalizer: turns the sequential trace counter into ids that
// are unique, well-distributed, and still fully deterministic (sgcl-R2
// bans RNG outside common/rng; trace ids must not perturb training).
uint64_t MixTraceId(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

void AppendSpanJson(const TraceRing::Span& s, std::string* out) {
  *out += StrFormat(
      "{\"name\":\"%s\",\"span_id\":%llu,\"parent_span_id\":%llu,"
      "\"tid\":%d,\"start_us\":%lld,\"dur_us\":%lld}",
      JsonEscape(s.name).c_str(), static_cast<unsigned long long>(s.span_id),
      static_cast<unsigned long long>(s.parent_span_id), s.tid,
      static_cast<long long>(s.start_us), static_cast<long long>(s.dur_us));
}

// Emits one span-tree node: the span itself, its self time (duration not
// covered by child spans), and its children ordered by start time.
void AppendTreeNodeJson(const TraceRing::Span& node,
                        const std::vector<const TraceRing::Span*>& spans,
                        int depth, std::string* out) {
  std::vector<const TraceRing::Span*> children;
  for (const TraceRing::Span* s : spans) {
    if (s->parent_span_id == node.span_id && s->span_id != node.span_id) {
      children.push_back(s);
    }
  }
  std::sort(children.begin(), children.end(),
            [](const TraceRing::Span* a, const TraceRing::Span* b) {
              if (a->start_us != b->start_us) return a->start_us < b->start_us;
              return a->span_id < b->span_id;
            });
  int64_t child_us = 0;
  for (const TraceRing::Span* c : children) child_us += c->dur_us;
  const int64_t self_us = std::max<int64_t>(0, node.dur_us - child_us);
  *out += StrFormat(
      "{\"name\":\"%s\",\"span_id\":%llu,\"tid\":%d,\"start_us\":%lld,"
      "\"dur_us\":%lld,\"self_us\":%lld,\"children\":[",
      JsonEscape(node.name).c_str(),
      static_cast<unsigned long long>(node.span_id), node.tid,
      static_cast<long long>(node.start_us),
      static_cast<long long>(node.dur_us), static_cast<long long>(self_us));
  if (depth < 64) {  // guard against malformed parent links
    bool first = true;
    for (const TraceRing::Span* c : children) {
      if (!first) *out += ',';
      first = false;
      AppendTreeNodeJson(*c, spans, depth + 1, out);
    }
  }
  *out += "]}";
}

}  // namespace

TraceContext CurrentTraceContext() { return t_ambient_context; }

std::string FormatTraceId(uint64_t trace_id) {
  return StrFormat("%016llx", static_cast<unsigned long long>(trace_id));
}

uint64_t ParseTraceId(const std::string& text) {
  const char* p = text.c_str();
  if (text.size() > 2 && p[0] == '0' && (p[1] == 'x' || p[1] == 'X')) p += 2;
  if (*p == '\0' || *p == '-') return 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(p, &end, 16);
  if (end == p || *end != '\0') return 0;
  return static_cast<uint64_t>(v);
}

ScopedTraceContext::ScopedTraceContext(TraceContext ctx) {
  if (!ctx.valid()) return;
  saved_ = t_ambient_context;
  t_ambient_context = ctx;
  installed_ = true;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (installed_) t_ambient_context = saved_;
}

TraceCollector::TraceCollector()
    : epoch_(std::chrono::steady_clock::now()) {}

void TraceCollector::Record(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void TraceCollector::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::vector<TraceCollector::Event> TraceCollector::Events() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events = events_;
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.dur_us > b.dur_us;
            });
  return events;
}

std::string TraceCollector::ToChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : Events()) {
    if (!first) out += ',';
    first = false;
    out += StrFormat(
        "{\"name\":\"%s\",\"cat\":\"sgcl\",\"ph\":\"X\",\"ts\":%lld,"
        "\"dur\":%lld,\"pid\":0,\"tid\":%d",
        JsonEscape(e.name).c_str(), static_cast<long long>(e.start_us),
        static_cast<long long>(e.dur_us), e.tid);
    if (e.trace_id != 0) {
      out += StrFormat(
          ",\"args\":{\"trace_id\":\"%s\",\"span_id\":%llu,"
          "\"parent_span_id\":%llu}",
          FormatTraceId(e.trace_id).c_str(),
          static_cast<unsigned long long>(e.span_id),
          static_cast<unsigned long long>(e.parent_span_id));
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

Status TraceCollector::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open trace file " + path);
  }
  out << ToChromeTraceJson() << '\n';
  out.flush();
  if (!out) return Status::Internal("short write to trace file " + path);
  return Status::OK();
}

int64_t TraceCollector::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int TraceCollector::CurrentThreadId() { return AssignThreadId(); }

TraceCollector& TraceCollector::Global() {
  // NOLINTNEXTLINE(sgcl-R5): intentionally leaked singleton
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

TraceRing::TraceRing() = default;

void TraceRing::SetSampleRate(double rate) {
  uint64_t period = 0;
  if (rate > 0.0) {
    if (rate >= 1.0) {
      period = 1;
    } else {
      period = static_cast<uint64_t>(std::llround(1.0 / rate));
      if (period == 0) period = 1;
    }
  }
  period_.store(period, std::memory_order_relaxed);
}

double TraceRing::sample_rate() const {
  const uint64_t period = period_.load(std::memory_order_relaxed);
  return period == 0 ? 0.0 : 1.0 / static_cast<double>(period);
}

void TraceRing::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, capacity);
  while (completed_.size() > capacity_) completed_.pop_front();
}

size_t TraceRing::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

TraceContext TraceRing::MaybeStartTrace() {
  const uint64_t period = period_.load(std::memory_order_relaxed);
  if (period == 0) return TraceContext{};
  const uint64_t n = admit_seq_.fetch_add(1, std::memory_order_relaxed);
  if (n % period != 0) return TraceContext{};
  const uint64_t id =
      MixTraceId(trace_seq_.fetch_add(1, std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A caller that samples a trace but never opens a root span would
    // leak its pending entry; bound the in-flight set defensively.
    if (pending_.size() >= capacity_ * 4 + 16) return TraceContext{};
    pending_.emplace(id, std::vector<Span>());
  }
  return TraceContext{id, 0};
}

void TraceRing::RecordSpan(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(span.trace_id);
  if (it == pending_.end()) return;  // late or foreign span: drop
  const bool is_root = span.parent_span_id == 0;
  it->second.push_back(std::move(span));
  if (is_root) CommitLocked(it->first);
}

uint64_t TraceRing::NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void TraceRing::CommitLocked(uint64_t trace_id) {
  auto it = pending_.find(trace_id);
  if (it == pending_.end()) return;
  Trace trace;
  trace.trace_id = trace_id;
  for (const Span& s : it->second) {
    if (s.parent_span_id == 0) {
      trace.root_name = s.name;
      trace.start_us = s.start_us;
      trace.dur_us = s.dur_us;
      break;
    }
  }
  trace.spans = std::move(it->second);
  pending_.erase(it);
  completed_.push_back(std::move(trace));
  ++committed_count_;
  while (completed_.size() > capacity_) completed_.pop_front();
}

std::vector<TraceRing::Trace> TraceRing::Traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Trace> out(completed_.rbegin(), completed_.rend());
  return out;
}

uint64_t TraceRing::committed_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return committed_count_;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  completed_.clear();
  pending_.clear();
  committed_count_ = 0;
}

std::string TraceRing::ListJson(int64_t min_duration_us, int limit,
                                bool include_spans) const {
  std::vector<Trace> traces = Traces();
  std::string out = StrFormat(
      "{\"capacity\":%llu,\"committed\":%llu,\"sample_rate\":%s,"
      "\"traces\":[",
      static_cast<unsigned long long>(capacity()),
      static_cast<unsigned long long>(committed_count()),
      JsonDouble(sample_rate()).c_str());
  bool first = true;
  int emitted = 0;
  for (const Trace& t : traces) {
    if (t.dur_us < min_duration_us) continue;
    if (limit > 0 && emitted >= limit) break;
    if (!first) out += ',';
    first = false;
    ++emitted;
    out += StrFormat(
        "{\"trace_id\":\"%s\",\"root\":\"%s\",\"start_us\":%lld,"
        "\"dur_us\":%lld,\"span_count\":%llu",
        FormatTraceId(t.trace_id).c_str(), JsonEscape(t.root_name).c_str(),
        static_cast<long long>(t.start_us), static_cast<long long>(t.dur_us),
        static_cast<unsigned long long>(t.spans.size()));
    if (include_spans) {
      out += ",\"spans\":[";
      for (size_t i = 0; i < t.spans.size(); ++i) {
        if (i > 0) out += ',';
        AppendSpanJson(t.spans[i], &out);
      }
      out += ']';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string TraceRing::TreeJson(uint64_t trace_id) const {
  Trace trace;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Trace& t : completed_) {
      if (t.trace_id == trace_id) {
        trace = t;
        found = true;
        break;
      }
    }
  }
  if (!found) return std::string();
  const TraceRing::Span* root = nullptr;
  std::vector<const Span*> spans;
  spans.reserve(trace.spans.size());
  for (const Span& s : trace.spans) {
    spans.push_back(&s);
    if (s.parent_span_id == 0) root = &s;
  }
  std::string out = StrFormat("{\"trace_id\":\"%s\",\"span_count\":%llu",
                              FormatTraceId(trace.trace_id).c_str(),
                              static_cast<unsigned long long>(spans.size()));
  if (root != nullptr) {
    out += ",\"root\":";
    AppendTreeNodeJson(*root, spans, 0, &out);
  }
  out += '}';
  return out;
}

TraceRing& TraceRing::Global() {
  // NOLINTNEXTLINE(sgcl-R5): intentionally leaked singleton
  static TraceRing* ring = new TraceRing();
  return *ring;
}

uint64_t RecordManualSpan(const char* name, TraceContext parent,
                          int64_t start_us, int64_t end_us,
                          uint64_t span_id) {
  // A parent span id of 0 would make this span look like a trace root
  // (committing the trace); manual spans must nest under a real span.
  if (!parent.valid() || parent.span_id == 0) return 0;
  if (span_id == 0) span_id = TraceRing::NextSpanId();
  const int64_t dur_us = std::max<int64_t>(0, end_us - start_us);
  const int tid = TraceCollector::CurrentThreadId();
  TraceCollector& collector = TraceCollector::Global();
  if (collector.enabled()) {
    TraceCollector::Event event;
    event.name = name;
    event.tid = tid;
    event.start_us = start_us;
    event.dur_us = dur_us;
    event.trace_id = parent.trace_id;
    event.span_id = span_id;
    event.parent_span_id = parent.span_id;
    collector.Record(std::move(event));
  }
  TraceRing::Span span;
  span.name = name;
  span.trace_id = parent.trace_id;
  span.span_id = span_id;
  span.parent_span_id = parent.span_id;
  span.tid = tid;
  span.start_us = start_us;
  span.dur_us = dur_us;
  TraceRing::Global().RecordSpan(std::move(span));
  return span_id;
}

TraceSpan::TraceSpan(const char* name, Counter* time_counter)
    : name_(name), counter_(time_counter) {
  chrome_ = TraceCollector::Global().enabled();
  const TraceContext ambient = t_ambient_context;
  if (ambient.trace_id != 0) {
    trace_id_ = ambient.trace_id;
    parent_span_id_ = ambient.span_id;
    span_id_ = TraceRing::NextSpanId();
    t_ambient_context = TraceContext{trace_id_, span_id_};
  }
  if (chrome_ || trace_id_ != 0 || counter_ != nullptr) {
    start_us_ = TraceCollector::Global().NowUs();
  }
}

TraceSpan::~TraceSpan() {
  if (trace_id_ != 0) {
    t_ambient_context = TraceContext{trace_id_, parent_span_id_};
  }
  if (!chrome_ && trace_id_ == 0 && counter_ == nullptr) return;
  TraceCollector& collector = TraceCollector::Global();
  const int64_t end_us = collector.NowUs();
  if (counter_ != nullptr) counter_->Increment(end_us - start_us_);
  const int tid = (chrome_ && collector.enabled()) || trace_id_ != 0
                      ? TraceCollector::CurrentThreadId()
                      : 0;
  // Spans that began before Enable() (or after a disable) are dropped
  // rather than recorded with a bogus duration.
  if (chrome_ && collector.enabled()) {
    TraceCollector::Event event;
    event.name = name_;
    event.tid = tid;
    event.start_us = start_us_;
    event.dur_us = end_us - start_us_;
    event.trace_id = trace_id_;
    event.span_id = span_id_;
    event.parent_span_id = parent_span_id_;
    collector.Record(std::move(event));
  }
  if (trace_id_ != 0) {
    TraceRing::Span span;
    span.name = name_;
    span.trace_id = trace_id_;
    span.span_id = span_id_;
    span.parent_span_id = parent_span_id_;
    span.tid = tid;
    span.start_us = start_us_;
    span.dur_us = end_us - start_us_;
    TraceRing::Global().RecordSpan(std::move(span));
  }
}

}  // namespace sgcl
