// sgcl_lint: in-repo static analyzer enforcing project invariants that
// the compiler cannot (fully) check. Token/line-level heuristics, no
// external dependencies — deliberately not a C++ parser (DESIGN.md §9).
//
// Rules:
//   sgcl-R1  no discarded fallible call: a statement that calls a
//            function known to return Status/Result<T> without binding,
//            returning, or wrapping the value. Backstops [[nodiscard]]
//            for call forms the compiler misses.
//   sgcl-R2  determinism: bans rand()/srand(), std::random_device,
//            time(nullptr)-style seeding, and std::chrono::system_clock
//            outside src/common/rng.* (allowlist covers legitimate
//            wall-clock timestamps in telemetry/logging).
//   sgcl-R3  no side effects inside SGCL_CHECK*/SGCL_DCHECK/assert
//            arguments (++/--, assignment, mutating-method heuristics):
//            checks compile out or short-circuit, so effects inside them
//            change behavior between build modes.
//   sgcl-R4  header hygiene: include-guard name must be derived from the
//            file path (src/common/lint.h -> SGCL_COMMON_LINT_H_), and
//            no `using namespace` at namespace scope in headers.
//   sgcl-R5  no naked new/delete outside the allowlist (intentionally
//            leaked singletons carry inline NOLINT suppressions).
//   sgcl-R6  crash consistency: checkpoint-path sources (any src/ or
//            tools/ file whose name contains "checkpoint" or
//            "train_state") must not write files with raw primitives
//            (std::ofstream, fopen, fwrite) — persistence goes through
//            AtomicWriteFile (common/io.h) so a crash can never publish
//            a torn checkpoint. Tests are exempt: they craft torn files
//            on purpose.
//   sgcl-R7  serving purity: src/serve/ sources must not do blocking
//            file I/O or load checkpoints/datasets (std::[io]fstream,
//            fopen/fread/fwrite, LoadCheckpoint, LoadDataset,
//            ParseJsonFile, ...). The serving hot path works only on
//            models the CLI loaded before Start; a disk access inside a
//            request handler or the dispatch thread stalls every
//            in-flight request behind it.
//
// Suppression: `// NOLINT(sgcl-R3)` on the offending line or
// `// NOLINTNEXTLINE(sgcl-R3)` on the line above; a bare `// NOLINT`
// suppresses every rule on that line. The allowlist file
// (tools/sgcl_lint_allowlist.txt) grants whole-file exemptions per rule
// with a recorded reason.
#ifndef SGCL_COMMON_LINT_H_
#define SGCL_COMMON_LINT_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sgcl::lint {

enum class Severity { kWarning, kError };

const char* SeverityToString(Severity severity);

struct Finding {
  std::string file;  // repo-relative path as given to AddFile
  int line = 0;      // 1-based
  std::string rule;  // "sgcl-R1" .. "sgcl-R7"
  Severity severity = Severity::kError;
  std::string message;
};

struct LintOptions {
  // Whole-file exemptions: (repo-relative path, rule) pairs; rule "*"
  // exempts the file from every rule.
  std::vector<std::pair<std::string, std::string>> allow;
};

// Parses an allowlist file. Format, one entry per line:
//   <repo-relative-path>:<rule>   # reason
// Blank lines and lines starting with '#' are ignored. The reason
// comment is mandatory so every exemption is documented.
Result<LintOptions> LoadAllowlist(const std::string& path);

// Two-phase analyzer: AddFile all sources first (phase 1 collects the
// names of fallible Status/Result-returning functions for sgcl-R1),
// then Run lints every added file. Findings are ordered by
// (file, line, rule) regardless of insertion order.
class Linter {
 public:
  explicit Linter(LintOptions options);

  void AddFile(const std::string& path, const std::string& content);

  std::vector<Finding> Run() const;

  // Names collected for sgcl-R1 (exposed for tests).
  const std::vector<std::string>& fallible_names() const {
    return fallible_names_;
  }

 private:
  struct FileEntry {
    std::string path;
    std::string content;
  };

  void LintFile(const FileEntry& file, std::vector<Finding>* out) const;
  bool Allowed(const std::string& path, const std::string& rule) const;

  LintOptions options_;
  std::vector<FileEntry> files_;
  std::vector<std::string> fallible_names_;  // sorted, unique
};

// One line per finding: "path:line: severity: [rule] message".
std::string FormatText(const std::vector<Finding>& findings);

// Deterministic JSON report: {"count":N,"findings":[...]} with findings
// in the same (file, line, rule) order as FormatText. Parseable by
// common/json (tests round-trip it).
std::string FormatJson(const std::vector<Finding>& findings);

// The include guard mandated for a header at `path` (repo-relative):
// strip a leading "src/", prefix "SGCL_", uppercase, map non-alnum to
// '_', append a trailing '_'.
std::string ExpectedIncludeGuard(const std::string& path);

}  // namespace sgcl::lint

#endif  // SGCL_COMMON_LINT_H_
