// sgcl_lint: in-repo static analyzer enforcing project invariants that
// the compiler cannot (fully) check. Two passes share one engine
// (DESIGN.md §9): a line pass over comment/string-scrubbed lines for
// the classic rules R1-R7, and a flow pass over a real token stream
// with scope tracking and a per-function symbol table for the
// thread-safety rules R8-R10, which understand the capability
// annotations in common/thread_annotations.h.
//
// Rules:
//   sgcl-R1  no discarded fallible call: a statement that calls a
//            function known to return Status/Result<T> without binding,
//            returning, or wrapping the value. Backstops [[nodiscard]]
//            for call forms the compiler misses.
//   sgcl-R2  determinism: bans rand()/srand(), std::random_device,
//            time(nullptr)-style seeding, and std::chrono::system_clock
//            outside src/common/rng.* (allowlist covers legitimate
//            wall-clock timestamps in telemetry/logging).
//   sgcl-R3  no side effects inside SGCL_CHECK*/SGCL_DCHECK/assert
//            arguments (++/--, assignment, mutating-method heuristics):
//            checks compile out or short-circuit, so effects inside them
//            change behavior between build modes.
//   sgcl-R4  header hygiene: include-guard name must be derived from the
//            file path (src/common/lint.h -> SGCL_COMMON_LINT_H_), and
//            no `using namespace` at namespace scope in headers.
//            Guard-name mismatches carry a mechanical fix (--fix).
//   sgcl-R5  no naked new/delete outside the allowlist (intentionally
//            leaked singletons carry inline NOLINT suppressions).
//   sgcl-R6  crash consistency: checkpoint-path sources (any src/ or
//            tools/ file whose name contains "checkpoint" or
//            "train_state") must not write files with raw primitives
//            (std::ofstream, fopen, fwrite) — persistence goes through
//            AtomicWriteFile (common/io.h) so a crash can never publish
//            a torn checkpoint. Tests are exempt: they craft torn files
//            on purpose.
//   sgcl-R7  serving purity: src/serve/ sources must not do blocking
//            file I/O or load checkpoints/datasets (std::[io]fstream,
//            fopen/fread/fwrite, LoadCheckpoint, LoadDataset,
//            ParseJsonFile, ...). The serving hot path works only on
//            models the CLI loaded before Start; a disk access inside a
//            request handler or the dispatch thread stalls every
//            in-flight request behind it.
//   sgcl-R8  guarded-member discipline: a member annotated
//            SGCL_GUARDED_BY(mu) is read or written in a method that
//            neither holds a std::lock_guard / std::unique_lock /
//            std::scoped_lock on `mu` in an enclosing scope nor is
//            annotated SGCL_REQUIRES(mu). Constructors/destructors are
//            exempt (no concurrent access during construction), and an
//            atomic guarded member accessed with an explicit
//            std::memory_order argument is accepted (documented-relaxed
//            escape hatch).
//   sgcl-R9  lock-order deadlocks: the repo-wide mutex acquisition
//            graph (an edge A -> B whenever B is acquired while A is
//            held) must be acyclic. Every acquisition edge on a cycle
//            is reported at its site. A NOLINT(sgcl-R9) on the
//            acquisition line removes that edge from the graph (the
//            ordering has been vetted by a human).
//   sgcl-R10 atomics hygiene in hot-path files: atomic load()/store()
//            without an explicit memory-order argument (the implicit
//            seq_cst is almost never what a hot path wants — and when
//            it is, it should say so; --fix inserts
//            std::memory_order_seq_cst), and any `volatile` (volatile
//            is not a synchronization primitive).
//
// Suppression: `// NOLINT(sgcl-RN)` on the offending line or
// `// NOLINTNEXTLINE(sgcl-RN)` on the line above; a bare `// NOLINT`
// suppresses every rule on that line. The allowlist file
// (tools/sgcl_lint_allowlist.txt) grants whole-file exemptions per rule
// with a recorded reason. Suppressions that no longer suppress anything
// are themselves reported (rule sgcl-nolint) under
// --report-stale-nolint.
#ifndef SGCL_COMMON_LINT_H_
#define SGCL_COMMON_LINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sgcl::lint {

// Bumped whenever a rule's behavior changes; part of the incremental
// cache key so stale caches self-invalidate.
inline constexpr int kEngineVersion = 2;

enum class Severity { kWarning, kError };

const char* SeverityToString(Severity severity);

// A mechanical, semantics-preserving rewrite attached to a finding
// (sgcl-R4 guard renames, sgcl-R10 explicit memory orders). `col` is a
// 0-based byte offset into line `line`; `len` bytes starting there are
// replaced by `replacement` (len 0 = pure insertion).
struct FixEdit {
  int line = 0;  // 1-based
  int col = 0;
  int len = 0;
  std::string replacement;
};

struct Finding {
  std::string file;  // repo-relative path as given to AddFile
  int line = 0;      // 1-based
  std::string rule;  // "sgcl-R1" .. "sgcl-R10", or "sgcl-nolint"
  Severity severity = Severity::kError;
  std::string message;
  std::vector<FixEdit> fixes;  // empty when the rule has no auto-fix
};

// Whole-file exemption: rule "*" exempts the file from every rule.
// `line` is the entry's line in the allowlist file (0 when constructed
// programmatically) — used to point stale-entry reports at the entry.
struct AllowEntry {
  std::string file;
  std::string rule;
  int line = 0;
};

struct LintOptions {
  std::vector<AllowEntry> allow;
  // Path the allow entries were loaded from (stale-entry reports point
  // here); empty when the allowlist was built programmatically.
  std::string allowlist_path;
  // Report NOLINT comments and allowlist entries that suppress nothing
  // (rule sgcl-nolint, warning).
  bool report_stale_nolint = false;
};

// Parses an allowlist file. Format, one entry per line:
//   <repo-relative-path>:<rule>   # reason
// Blank lines and lines starting with '#' are ignored. The reason
// comment is mandatory so every exemption is documented.
Result<LintOptions> LoadAllowlist(const std::string& path);

// ---- Tokenizer (flow pass, exposed for tests) ------------------------

enum class TokenKind {
  kIdentifier,  // identifiers and keywords
  kNumber,      // pp-number (incl. digit separators, suffixes)
  kString,      // string literal, raw or plain, lexeme includes quotes
  kChar,        // character literal
  kPunct,       // operator/punctuator ("::", "->", single chars, ...)
  kDirective,   // one whole preprocessor line ("#include <x>", ...)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
  int col = 0;   // 0-based byte offset in that line
};

// Lexes C++ source: comments are skipped; string/char literals
// (including raw strings and encoding prefixes) become single tokens; a
// preprocessor directive (with backslash continuations) becomes one
// kDirective token. Never fails: unexpected bytes lex as one-char
// kPunct tokens.
std::vector<Token> Tokenize(const std::string& content);

// ---- Declaration tables (flow pass, phase 1) -------------------------

// Per-file declarations the flow rules need repo-wide: annotated
// guarded members, SGCL_REQUIRES methods, and mutex/atomic members per
// class, plus the Status/Result-returning function names for sgcl-R1.
struct FileDecls {
  struct GuardedMember {
    std::string class_name;
    std::string member;
    std::string mutex;  // guard expression, verbatim ("mu_")
    bool atomic = false;
  };
  struct RequiresMethod {
    std::string class_name;
    std::string method;
    std::vector<std::string> mutexes;
  };
  std::vector<std::string> fallible_names;
  std::vector<GuardedMember> guarded_members;
  std::vector<RequiresMethod> requires_methods;
  std::vector<std::string> mutex_members;   // "Class::member"
  std::vector<std::string> atomic_members;  // "Class::member"
};

FileDecls ExtractDecls(const std::string& content);

// Merged view over every file's declarations. Classes are keyed by
// unqualified name (namespace collisions are accepted — the repo has
// none — and documented in DESIGN.md §9).
struct GlobalTables {
  std::vector<std::string> fallible_names;               // sorted unique
  std::vector<FileDecls::GuardedMember> guarded_members; // sorted
  std::vector<FileDecls::RequiresMethod> requires_methods;
  std::vector<std::string> mutex_members;                // sorted unique
  std::vector<std::string> atomic_members;               // sorted unique

  // CRC32 over a canonical serialization plus kEngineVersion; the
  // incremental cache key for per-file findings.
  uint32_t Digest() const;
};

GlobalTables BuildTables(const std::vector<FileDecls>& decls);

// ---- Per-file analysis -----------------------------------------------

// One mutex-acquisition-order edge: `to` was acquired while `from` was
// held, at file:line.
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
};

// A NOLINT comment that suppressed nothing (candidate sgcl-nolint).
struct StaleNolint {
  int line = 0;         // line of the comment
  std::string rules;    // its category list as written ("sgcl-R5"), or "*"
};

struct FileAnalysis {
  std::vector<Finding> findings;  // post-suppression; excludes R9 cycles
  std::vector<LockEdge> edges;    // post-suppression acquisition edges
  std::vector<StaleNolint> stale_nolints;
  // Allowlist entries that actually suppressed a finding in this file.
  std::vector<std::pair<std::string, std::string>> used_allow;
};

// Runs both passes over one file. `tables` carries the repo-wide
// declarations (BuildTables over every file's ExtractDecls). Thread
// safe and deterministic: analyzing files concurrently and merging in
// path order reproduces the serial result.
FileAnalysis AnalyzeFile(const std::string& path, const std::string& content,
                         const GlobalTables& tables,
                         const LintOptions& options);

// sgcl-R9: finds cycles in the repo-wide acquisition graph and reports
// every edge on a cycle at its site. Deterministic (sorted output).
std::vector<Finding> LockCycleFindings(const std::vector<LockEdge>& edges);

// Folds per-file analyses (paths[i] described by analyses[i]) into the
// final report exactly as Linter::Run does: per-file findings, stale
// NOLINT comments, sgcl-R9 cycles over the merged acquisition graph,
// and stale allowlist entries. Order-insensitive input, sorted output —
// the contract the parallel/incremental driver relies on.
std::vector<Finding> MergeAnalyses(const std::vector<std::string>& paths,
                                   const std::vector<FileAnalysis>& analyses,
                                   const LintOptions& options);

// Applies every FixEdit among `findings` that targets `path` to
// `content` and returns the rewritten text. Edits are applied
// bottom-up so positions stay valid; overlapping edits keep the first.
std::string ApplyFixes(const std::string& path, const std::string& content,
                       const std::vector<Finding>& findings);

// ---- Orchestration ---------------------------------------------------

// Two-phase analyzer: AddFile all sources first (phase 1 collects the
// declaration tables: fallible names for sgcl-R1, guarded members and
// REQUIRES methods for sgcl-R8/R9), then Run lints every added file and
// closes the repo-wide acquisition graph. Findings are ordered by
// (file, line, rule) regardless of insertion order.
class Linter {
 public:
  explicit Linter(LintOptions options);

  void AddFile(const std::string& path, const std::string& content);

  std::vector<Finding> Run() const;

  // Names collected for sgcl-R1 (exposed for tests).
  const std::vector<std::string>& fallible_names() const {
    return fallible_names_;
  }

 private:
  struct FileEntry {
    std::string path;
    std::string content;
    FileDecls decls;
  };

  LintOptions options_;
  std::vector<FileEntry> files_;
  std::vector<std::string> fallible_names_;  // sorted, unique
};

// One line per finding: "path:line: severity: [rule] message".
std::string FormatText(const std::vector<Finding>& findings);

// Deterministic JSON report: {"count":N,"findings":[...]} with findings
// in the same (file, line, rule) order as FormatText. Parseable by
// common/json (tests round-trip it).
std::string FormatJson(const std::vector<Finding>& findings);

// The include guard mandated for a header at `path` (repo-relative):
// strip a leading "src/", prefix "SGCL_", uppercase, map non-alnum to
// '_', append a trailing '_'.
std::string ExpectedIncludeGuard(const std::string& path);

}  // namespace sgcl::lint

#endif  // SGCL_COMMON_LINT_H_
