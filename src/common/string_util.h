// Small string formatting helpers (libstdc++ 12 lacks <format>).
#ifndef SGCL_COMMON_STRING_UTIL_H_
#define SGCL_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace sgcl {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& sep);

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

}  // namespace sgcl

#endif  // SGCL_COMMON_STRING_UTIL_H_
