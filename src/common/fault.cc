#include "common/fault.h"

#include <algorithm>

#include "common/string_util.h"

namespace sgcl {
namespace {

constexpr const char* kCrashPrefix = "simulated crash @ ";

}  // namespace

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError:
      return "error";
    case FaultKind::kShortWrite:
      return "short-write";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

Status SimulatedCrash(const std::string& point) {
  return Status::Internal(kCrashPrefix + point);
}

bool IsSimulatedCrash(const Status& status) {
  return status.code() == StatusCode::kInternal &&
         status.message().rfind(kCrashPrefix, 0) == 0;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* const injector =
      new FaultInjector();  // NOLINT(sgcl-R5): intentionally leaked singleton
  return *injector;
}

void FaultInjector::Arm(const std::string& point, FaultKind kind,
                        int64_t nth) {
  SGCL_CHECK_GE(nth, 1);
  std::lock_guard<std::mutex> lock(mu_);
  arms_[point].push_back(Arming{kind, nth, false});
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::ArmRandom(double p, uint64_t seed, FaultKind kind) {
  SGCL_CHECK(p >= 0.0 && p <= 1.0);
  std::lock_guard<std::mutex> lock(mu_);
  random_p_ = p;
  random_kind_ = kind;
  random_rng_.emplace(seed);
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  arms_.clear();
  hit_counts_.clear();
  random_p_ = 0.0;
  random_rng_.reset();
  enabled_.store(false, std::memory_order_relaxed);
}

std::optional<FaultKind> FaultInjector::Check(const std::string& point) {
  if (!enabled_.load(std::memory_order_relaxed)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return std::nullopt;
  const int64_t hit = ++hit_counts_[point];
  const auto it = arms_.find(point);
  if (it != arms_.end()) {
    for (Arming& arm : it->second) {
      if (!arm.fired && arm.nth == hit) {
        arm.fired = true;
        return arm.kind;
      }
    }
  }
  if (random_rng_.has_value() && random_p_ > 0.0 &&
      random_rng_->Bernoulli(random_p_)) {
    return random_kind_;
  }
  return std::nullopt;
}

int64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = hit_counts_.find(point);
  return it == hit_counts_.end() ? 0 : it->second;
}

std::vector<std::string> FaultInjector::SeenPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> points;
  points.reserve(hit_counts_.size());
  for (const auto& [point, count] : hit_counts_) points.push_back(point);
  return points;  // std::map iterates in sorted key order already
}

}  // namespace sgcl
