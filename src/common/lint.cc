// Line pass, suppression handling, and orchestration of the lint
// engine. The flow pass (tokenizer, declaration tables, R8-R10) lives
// in lint_flow.cc; the split keeps each half reviewable.
#include "common/lint.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/lint_internal.h"
#include "common/metrics.h"  // JsonEscape
#include "common/string_util.h"

namespace sgcl::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// True when s[pos..] starts an occurrence of `ident` as a whole token.
bool TokenAt(const std::string& s, size_t pos, const std::string& ident) {
  if (s.compare(pos, ident.size(), ident) != 0) return false;
  if (pos > 0 && IsIdentChar(s[pos - 1])) return false;
  const size_t end = pos + ident.size();
  return end >= s.size() || !IsIdentChar(s[end]);
}

size_t SkipSpaces(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos]))) {
    ++pos;
  }
  return pos;
}

}  // namespace

namespace internal {

void ScrubLines(const std::string& content, std::vector<std::string>* raw,
                std::vector<std::string>* scrubbed,
                std::vector<int>* comment_cols) {
  raw->clear();
  scrubbed->clear();
  if (comment_cols != nullptr) comment_cols->clear();
  std::vector<std::string> lines;
  {
    std::string cur;
    for (char c : content) {
      if (c == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    lines.push_back(cur);
  }

  enum class State { kCode, kBlockComment, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the )delim" terminator
  for (const std::string& line : lines) {
    raw->push_back(line);
    int comment_col = -1;
    std::string out = line;
    size_t i = 0;
    while (i < out.size()) {
      if (state == State::kBlockComment) {
        const size_t close = out.find("*/", i);
        const size_t stop = close == std::string::npos ? out.size() : close;
        for (size_t j = i; j < stop; ++j) out[j] = ' ';
        if (close == std::string::npos) {
          i = out.size();
        } else {
          out[close] = out[close + 1] = ' ';
          i = close + 2;
          state = State::kCode;
        }
        continue;
      }
      if (state == State::kRawString) {
        const size_t close = out.find(raw_delim, i);
        const size_t stop =
            close == std::string::npos ? out.size() : close + raw_delim.size();
        for (size_t j = i; j < stop; ++j) out[j] = ' ';
        if (close == std::string::npos) {
          i = out.size();
        } else {
          i = close + raw_delim.size();
          state = State::kCode;
        }
        continue;
      }
      const char c = out[i];
      if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
        comment_col = static_cast<int>(i);
        for (size_t j = i; j < out.size(); ++j) out[j] = ' ';
        break;
      }
      if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
        out[i] = out[i + 1] = ' ';
        i += 2;
        state = State::kBlockComment;
        continue;
      }
      if (c == 'R' && i + 1 < out.size() && out[i + 1] == '"' &&
          (i == 0 || !IsIdentChar(out[i - 1]))) {
        const size_t open = out.find('(', i + 2);
        if (open != std::string::npos) {
          // Built character-wise: GCC 12's -Wrestrict misfires on
          // std::string concatenation/append here (PR105329).
          raw_delim.clear();
          raw_delim += ')';
          for (size_t j = i + 2; j < open; ++j) raw_delim += out[j];
          raw_delim += '"';
          for (size_t j = i; j <= open; ++j) out[j] = ' ';
          i = open + 1;
          state = State::kRawString;
          continue;
        }
      }
      if (c == '\'' && i > 0 && IsIdentChar(out[i - 1])) {
        ++i;  // digit separator (1'000'000), not a char literal
        continue;
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        size_t j = i + 1;
        while (j < out.size()) {
          if (out[j] == '\\') {
            j += 2;
            continue;
          }
          if (out[j] == quote) break;
          ++j;
        }
        const size_t stop = std::min(j, out.size() - 1);
        for (size_t k = i; k <= stop; ++k) out[k] = ' ';
        i = stop + 1;
        continue;
      }
      ++i;
    }
    scrubbed->push_back(out);
    if (comment_cols != nullptr) comment_cols->push_back(comment_col);
  }
}

void CollectFallibleNames(const std::string& line,
                          std::set<std::string>* names) {
  for (size_t i = 0; i < line.size(); ++i) {
    size_t after = std::string::npos;
    if (TokenAt(line, i, "Status")) {
      after = i + 6;
    } else if (TokenAt(line, i, "Result")) {
      size_t j = SkipSpaces(line, i + 6);
      if (j >= line.size() || line[j] != '<') continue;
      int depth = 0;
      while (j < line.size()) {
        if (line[j] == '<') ++depth;
        if (line[j] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++j;
      }
      if (j >= line.size()) continue;  // template args span lines: skip
      after = j + 1;
    }
    if (after == std::string::npos) continue;
    size_t j = SkipSpaces(line, after);
    if (j >= line.size() || !IsIdentStart(line[j])) continue;
    const size_t name_begin = j;
    while (j < line.size() && IsIdentChar(line[j])) ++j;
    const std::string name = line.substr(name_begin, j - name_begin);
    j = SkipSpaces(line, j);
    if (j < line.size() && line[j] == '(') names->insert(name);
    i = j;
  }
}

}  // namespace internal

namespace {

// ---- suppressions ----------------------------------------------------

// One NOLINT / NOLINTNEXTLINE comment. Only a directive that opens its
// comment (`// NOLINT...`) and names at least one sgcl rule (or is
// bare) is `eligible` for stale reporting: prose that merely mentions
// NOLINT, or string-literal fixtures containing one, never is.
struct NolintComment {
  int line_idx = 0;      // 0-based line of the comment itself
  std::string rules;     // as written: "*" or "sgcl-R5, sgcl-R9"
  bool eligible = false;
  bool used = false;
};

struct Suppressions {
  std::vector<NolintComment> comments;
  // Per 0-based target line: (comment index, rule-or-"*") pairs.
  std::vector<std::vector<std::pair<int, std::string>>> by_line;
};

Suppressions ParseSuppressions(const std::vector<std::string>& raw,
                               const std::vector<int>& comment_cols) {
  Suppressions out;
  out.by_line.resize(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    const std::string& line = raw[i];
    size_t pos = 0;
    while ((pos = line.find("NOLINT", pos)) != std::string::npos) {
      const bool nextline =
          line.compare(pos, std::string("NOLINTNEXTLINE").size(),
                       "NOLINTNEXTLINE") == 0;
      size_t after = pos + (nextline ? 14 : 6);
      const size_t target =
          nextline ? (i + 1 < raw.size() ? i + 1 : raw.size()) : i;
      NolintComment comment;
      comment.line_idx = static_cast<int>(i);
      const int ccol = comment_cols[i];
      comment.eligible =
          ccol >= 0 &&
          SkipSpaces(line, static_cast<size_t>(ccol) + 2) == pos;
      std::vector<std::string> rules;
      if (after < line.size() && line[after] == '(') {
        const size_t close = line.find(')', after);
        const std::string cats =
            close == std::string::npos
                ? line.substr(after + 1)
                : line.substr(after + 1, close - after - 1);
        for (const std::string& cat : StrSplit(cats, ',')) {
          const std::string c = Trim(cat);
          if (c.rfind("sgcl-", 0) == 0) rules.push_back(c);
        }
        if (rules.empty()) comment.eligible = false;  // not our categories
        for (size_t r = 0; r < rules.size(); ++r) {
          comment.rules += (r > 0 ? ", " : "") + rules[r];
        }
      } else {
        // A bare directive must end the comment or carry a `: reason`;
        // "NOLINT comments are consulted..." is prose, not a directive.
        const bool word_end =
            after >= line.size() ||
            (!std::isalnum(static_cast<unsigned char>(line[after])) &&
             line[after] != '_');
        const size_t next = SkipSpaces(line, after);
        const bool terminated = next >= line.size() || line[next] == ':';
        if (!word_end || !terminated) {
          pos = after;
          continue;
        }
        rules.push_back("*");
        comment.rules = "*";
      }
      const int ci = static_cast<int>(out.comments.size());
      out.comments.push_back(comment);
      if (target < raw.size()) {
        for (const std::string& r : rules) {
          out.by_line[target].push_back({ci, r});
        }
      }
      pos = after;
    }
  }
  return out;
}

// ---- sgcl-R1 helpers -------------------------------------------------

bool IsMacroName(const std::string& name) {
  for (char c : name) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

const char* const kStatementKeywords[] = {
    "return",   "if",     "while",  "for",       "switch", "case",
    "delete",   "new",    "using",  "namespace", "class",  "struct",
    "enum",     "throw",  "goto",   "else",      "do",     "break",
    "continue", "public", "private", "protected", "template", "typedef",
    "co_return", "static_assert", "sizeof",
};

// If `trimmed` is a bare expression-statement call `a.b.c(...);`,
// returns the final callee identifier; otherwise "".
std::string BareCallCallee(const std::string& trimmed) {
  if (trimmed.empty() || trimmed.back() != ';') return "";
  if (trimmed.find('=') != std::string::npos) return "";
  for (const char* kw : kStatementKeywords) {
    if (TokenAt(trimmed, 0, kw)) return "";
  }
  size_t i = 0;
  std::string last;
  for (;;) {
    if (i >= trimmed.size() || !IsIdentStart(trimmed[i])) return "";
    const size_t begin = i;
    while (i < trimmed.size() && IsIdentChar(trimmed[i])) ++i;
    last = trimmed.substr(begin, i - begin);
    if (i + 1 < trimmed.size() && trimmed[i] == ':' && trimmed[i + 1] == ':') {
      i += 2;
      continue;
    }
    if (i < trimmed.size() && trimmed[i] == '.') {
      i += 1;
      continue;
    }
    if (i + 1 < trimmed.size() && trimmed[i] == '-' && trimmed[i + 1] == '>') {
      i += 2;
      continue;
    }
    break;
  }
  if (i >= trimmed.size() || trimmed[i] != '(') return "";
  // The statement must be nothing but this call: `callee(...);`.
  if (trimmed.rfind(");") != trimmed.size() - 2) return "";
  return last;
}

// ---- sgcl-R3 helpers -------------------------------------------------

const char* const kCheckMacros[] = {
    "SGCL_CHECK_EQ", "SGCL_CHECK_NE", "SGCL_CHECK_LT", "SGCL_CHECK_LE",
    "SGCL_CHECK_GT", "SGCL_CHECK_GE", "SGCL_CHECK_OP", "SGCL_CHECK",
    "SGCL_DCHECK",   "assert",
};

const char* const kMutatingMethods[] = {
    "push_back", "pop_back", "emplace_back", "emplace", "insert",
    "erase",     "clear",    "reset",        "resize",  "pop",
    "push",      "assign",   "append",       "Increment", "Observe",
    "Submit",    "Set",
};

// Scans a check-macro argument for side-effect constructs. Returns a
// description of the first one found, or "".
std::string FindSideEffect(const std::string& arg) {
  for (size_t i = 0; i + 1 < arg.size(); ++i) {
    if ((arg[i] == '+' && arg[i + 1] == '+') ||
        (arg[i] == '-' && arg[i + 1] == '-')) {
      return "increment/decrement";
    }
  }
  for (size_t i = 0; i < arg.size(); ++i) {
    if (arg[i] != '=') continue;
    if (i + 1 < arg.size() && arg[i + 1] == '=') continue;  // ==
    const char prev = i > 0 ? arg[i - 1] : '\0';
    if (prev == '=' || prev == '!') continue;  // ==, !=
    if (prev == '<' || prev == '>') {
      // <= / >= are comparisons, <<= / >>= are assignments.
      const char prev2 = i > 1 ? arg[i - 2] : '\0';
      if (prev2 != prev) continue;
      return "compound assignment";
    }
    if (prev == '+' || prev == '-' || prev == '*' || prev == '/' ||
        prev == '%' || prev == '&' || prev == '|' || prev == '^') {
      return "compound assignment";
    }
    return "assignment";
  }
  for (const char* method : kMutatingMethods) {
    const std::string dot = std::string(".") + method + "(";
    const std::string arrow = std::string("->") + method + "(";
    if (arg.find(dot) != std::string::npos ||
        arg.find(arrow) != std::string::npos) {
      return StrFormat("call to mutating method '%s'", method);
    }
  }
  return "";
}

std::string RuleMessageR2(const std::string& what) {
  return StrFormat(
      "%s breaks bitwise determinism; use common/rng (seeded PRNG) or add "
      "an allowlist entry for legitimate wall-clock use",
      what.c_str());
}

// ---- line pass (sgcl-R1..R7), pre-suppression ------------------------

void LineRuleFindings(const std::string& path,
                      const std::vector<std::string>& raw,
                      const std::vector<std::string>& scrubbed,
                      const std::vector<std::string>& fallible_names,
                      std::vector<Finding>* out) {
  const bool is_header =
      path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;

  const auto emit = [&](size_t line_idx, const char* rule, Severity severity,
                        std::string message) -> Finding* {
    Finding f;
    f.file = path;
    f.line = static_cast<int>(line_idx + 1);
    f.rule = rule;
    f.severity = severity;
    f.message = std::move(message);
    out->push_back(std::move(f));
    return &out->back();
  };

  const std::set<std::string> fallible(fallible_names.begin(),
                                       fallible_names.end());
  const bool rng_impl = path.rfind("src/common/rng.", 0) == 0;
  // R6 scope: production checkpoint-path sources. Tests are exempt —
  // corruption tests write torn files on purpose.
  const bool checkpoint_path =
      path.rfind("tests/", 0) != 0 &&
      (path.find("checkpoint") != std::string::npos ||
       path.find("train_state") != std::string::npos);
  // R7 scope: the serving layer proper. Tools (which legitimately load
  // the checkpoint before handing the model to ServeService) and tests
  // are out of scope by construction.
  const bool serve_path = path.rfind("src/serve/", 0) == 0;

  for (size_t li = 0; li < scrubbed.size(); ++li) {
    const std::string& line = scrubbed[li];

    // R1: discarded fallible call. Only statement-start lines count: a
    // line continuing `x =` / `return` from above is part of that
    // statement, not a discarded call.
    bool statement_start = true;
    for (size_t pj = li; pj > 0; --pj) {
      const std::string prev = Trim(scrubbed[pj - 1]);
      if (prev.empty()) continue;
      statement_start = prev.back() == ';' || prev.back() == '{' ||
                        prev.back() == '}' || prev.back() == ':' ||
                        prev[0] == '#';
      break;
    }
    const std::string trimmed = Trim(line);
    const std::string callee =
        statement_start ? BareCallCallee(trimmed) : std::string();
    if (!callee.empty() && !IsMacroName(callee) &&
        fallible.count(callee) != 0) {
      emit(li, "sgcl-R1", Severity::kWarning,
           StrFormat("result of fallible call '%s' is discarded; bind it, "
                     "return it, or wrap it in a check macro",
                     callee.c_str()));
    }

    // R2: nondeterminism sources.
    if (!rng_impl) {
      for (size_t i = 0; i < line.size(); ++i) {
        if (TokenAt(line, i, "rand") || TokenAt(line, i, "srand")) {
          const size_t len = line[i] == 's' ? 5 : 4;
          if (SkipSpaces(line, i + len) < line.size() &&
              line[SkipSpaces(line, i + len)] == '(') {
            emit(li, "sgcl-R2", Severity::kError,
                 RuleMessageR2(line[i] == 's' ? "srand()" : "rand()"));
          }
        } else if (TokenAt(line, i, "random_device")) {
          emit(li, "sgcl-R2", Severity::kError,
               RuleMessageR2("std::random_device"));
        } else if (TokenAt(line, i, "system_clock")) {
          emit(li, "sgcl-R2", Severity::kError,
               RuleMessageR2("std::chrono::system_clock"));
        } else if (TokenAt(line, i, "time")) {
          size_t j = SkipSpaces(line, i + 4);
          if (j < line.size() && line[j] == '(') {
            j = SkipSpaces(line, j + 1);
            if (TokenAt(line, j, "nullptr") || TokenAt(line, j, "NULL") ||
                (j < line.size() && line[j] == '0')) {
              emit(li, "sgcl-R2", Severity::kError,
                   RuleMessageR2("time(nullptr)-style seeding"));
            }
          }
        }
      }
    }

    // R3: side effects inside check macros (argument may span lines).
    for (size_t i = 0; i < line.size(); ++i) {
      const char* matched = nullptr;
      for (const char* macro : kCheckMacros) {
        if (TokenAt(line, i, macro)) {
          matched = macro;
          break;
        }
      }
      if (matched == nullptr) continue;
      // Skip the macro's own #define in check.h.
      if (Trim(line).rfind("#define", 0) == 0) break;
      size_t pos = i + std::string(matched).size();
      std::string arg;
      int depth = 0;
      size_t lj = li;
      bool done = false;
      while (lj < scrubbed.size() && lj < li + 30 && !done) {
        const std::string& cur = scrubbed[lj];
        size_t start = lj == li ? pos : 0;
        for (size_t k = start; k < cur.size(); ++k) {
          if (cur[k] == '(') {
            ++depth;
            if (depth == 1) continue;
          }
          if (cur[k] == ')') {
            --depth;
            if (depth == 0) {
              done = true;
              break;
            }
          }
          if (depth >= 1) arg += cur[k];
        }
        arg += ' ';
        ++lj;
      }
      if (done) {
        const std::string effect = FindSideEffect(arg);
        if (!effect.empty()) {
          emit(li, "sgcl-R3", Severity::kError,
               StrFormat("%s inside %s: checks must be side-effect free "
                         "(they compile out or abort)",
                         effect.c_str(), matched));
        }
      }
      i += std::string(matched).size() - 1;
    }

    // R6: raw file-writing primitives in checkpoint-path sources.
    if (checkpoint_path) {
      for (const char* prim : {"ofstream", "fopen", "fwrite"}) {
        for (size_t i = 0; i < line.size(); ++i) {
          if (TokenAt(line, i, prim)) {
            emit(li, "sgcl-R6", Severity::kError,
                 StrFormat("raw '%s' in a checkpoint path bypasses the "
                           "atomic-write API; persist through "
                           "AtomicWriteFile (common/io.h) so a crash can "
                           "never publish a torn checkpoint",
                           prim));
            break;
          }
        }
      }
    }

    // R7: blocking file I/O or checkpoint/dataset loading in src/serve/.
    if (serve_path) {
      for (const char* prim :
           {"ofstream", "ifstream", "fstream", "fopen", "fread", "fwrite",
            "LoadCheckpoint", "LoadTrainCheckpoint", "LoadDataset",
            "ParseJsonFile", "AtomicWriteFile", "ReadFileToString"}) {
        for (size_t i = 0; i < line.size(); ++i) {
          if (TokenAt(line, i, prim)) {
            emit(li, "sgcl-R7", Severity::kError,
                 StrFormat("'%s' in the serving layer: src/serve/ must not "
                           "touch the filesystem — load checkpoints and "
                           "datasets in the CLI before ServeService::Start "
                           "so request handlers never block on disk",
                           prim));
            break;
          }
        }
      }
    }

    // R4b: using namespace in headers.
    if (is_header) {
      for (size_t i = 0; i < line.size(); ++i) {
        if (TokenAt(line, i, "using")) {
          const size_t j = SkipSpaces(line, i + 5);
          if (TokenAt(line, j, "namespace")) {
            emit(li, "sgcl-R4", Severity::kError,
                 "'using namespace' in a header leaks into every includer");
          }
        }
      }
    }

    // R5: naked new / delete.
    for (size_t i = 0; i < line.size(); ++i) {
      if (TokenAt(line, i, "new")) {
        const size_t j = SkipSpaces(line, i + 3);
        const bool allocates =
            j < line.size() && (IsIdentStart(line[j]) || line[j] == '(');
        // `operator new` declarations are not allocations.
        const std::string before = Trim(line.substr(0, i));
        const bool is_operator_decl =
            before.size() >= 8 &&
            before.compare(before.size() - 8, 8, "operator") == 0;
        if (allocates && !is_operator_decl) {
          emit(li, "sgcl-R5", Severity::kError,
               "naked 'new': use make_unique/containers, or suppress for "
               "intentionally leaked singletons");
        }
      } else if (TokenAt(line, i, "delete")) {
        size_t j = SkipSpaces(line, i + 6);
        if (j + 1 < line.size() && line[j] == '[' && line[j + 1] == ']') {
          j = SkipSpaces(line, j + 2);
        }
        const bool deletes =
            j < line.size() && (IsIdentStart(line[j]) || line[j] == '*' ||
                                line[j] == '(');
        const std::string before = Trim(line.substr(0, i));
        const bool deleted_fn = !before.empty() && before.back() == '=';
        if (deletes && !deleted_fn) {
          emit(li, "sgcl-R5", Severity::kError,
               "naked 'delete': owning pointers belong in unique_ptr");
        }
      }
    }
  }

  // R4a: include-guard name must derive from the file path. A mismatch
  // carries fixes renaming every directive-line occurrence of the
  // actual guard (#ifndef, #define, and the #endif trailer).
  if (is_header) {
    const std::string expected = ExpectedIncludeGuard(path);
    size_t guard_line = std::string::npos;
    std::string actual;
    for (size_t li = 0; li < scrubbed.size(); ++li) {
      const std::string t = Trim(scrubbed[li]);
      if (t.rfind("#ifndef", 0) == 0) {
        actual = Trim(t.substr(7));
        guard_line = li;
        break;
      }
    }
    if (guard_line == std::string::npos) {
      emit(0, "sgcl-R4", Severity::kError,
           StrFormat("missing include guard (expected #ifndef %s)",
                     expected.c_str()));
    } else if (actual != expected) {
      Finding* f = emit(
          guard_line, "sgcl-R4", Severity::kError,
          StrFormat("include guard '%s' does not match path (expected %s)",
                    actual.c_str(), expected.c_str()));
      if (!actual.empty()) {
        for (size_t li = 0; li < raw.size(); ++li) {
          if (Trim(scrubbed[li]).rfind("#", 0) != 0) continue;
          for (size_t pos = 0; (pos = raw[li].find(actual, pos)) !=
                               std::string::npos;
               pos += actual.size()) {
            if (!TokenAt(raw[li], pos, actual)) continue;
            f->fixes.push_back({static_cast<int>(li + 1),
                                static_cast<int>(pos),
                                static_cast<int>(actual.size()), expected});
          }
        }
      }
    } else {
      // The matching #define must follow.
      bool defined = false;
      size_t define_line = std::string::npos;
      std::string define_name;
      for (size_t li = guard_line + 1; li < scrubbed.size(); ++li) {
        const std::string t = Trim(scrubbed[li]);
        if (t.rfind("#define", 0) == 0) {
          define_name = Trim(t.substr(7));
          define_line = li;
          defined = define_name == expected;
          break;
        }
      }
      if (!defined) {
        Finding* f = emit(
            guard_line, "sgcl-R4", Severity::kError,
            StrFormat("#ifndef %s is not followed by a matching #define",
                      expected.c_str()));
        if (define_line != std::string::npos && !define_name.empty()) {
          const size_t pos = raw[define_line].find(define_name);
          if (pos != std::string::npos) {
            f->fixes.push_back({static_cast<int>(define_line + 1),
                                static_cast<int>(pos),
                                static_cast<int>(define_name.size()),
                                expected});
          }
        }
      }
    }
  }
}

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
}

}  // namespace

const char* SeverityToString(Severity severity) {
  return severity == Severity::kWarning ? "warning" : "error";
}

Result<LintOptions> LoadAllowlist(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound(StrFormat("allowlist: cannot open %s",
                                      path.c_str()));
  }
  LintOptions options;
  options.allowlist_path = path;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string entry = line;
    const size_t hash = line.find('#');
    std::string reason;
    if (hash != std::string::npos) {
      entry = line.substr(0, hash);
      reason = Trim(line.substr(hash + 1));
    }
    entry = Trim(entry);
    if (entry.empty()) continue;  // blank or pure comment line
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("allowlist %s:%d: expected '<path>:<rule>  # reason', "
                    "got '%s'",
                    path.c_str(), lineno, entry.c_str()));
    }
    const std::string file = Trim(entry.substr(0, colon));
    const std::string rule = Trim(entry.substr(colon + 1));
    bool valid_rule = rule == "*";
    if (!valid_rule && rule.rfind("sgcl-R", 0) == 0) {
      const std::string num = rule.substr(6);
      int value = 0;
      valid_rule = !num.empty() && num.size() <= 2 &&
                   num.find_first_not_of("0123456789") == std::string::npos;
      if (valid_rule) value = std::stoi(num);
      valid_rule = valid_rule && value >= 1 && value <= 10;
    }
    if (file.empty() || !valid_rule) {
      return Status::InvalidArgument(
          StrFormat("allowlist %s:%d: bad entry '%s' (rule must be "
                    "sgcl-R1..sgcl-R10 or *)",
                    path.c_str(), lineno, entry.c_str()));
    }
    if (reason.empty()) {
      return Status::InvalidArgument(
          StrFormat("allowlist %s:%d: entry '%s' needs a '# reason' comment",
                    path.c_str(), lineno, entry.c_str()));
    }
    options.allow.push_back({file, rule, lineno});
  }
  return options;
}

FileAnalysis AnalyzeFile(const std::string& path, const std::string& content,
                         const GlobalTables& tables,
                         const LintOptions& options) {
  std::vector<std::string> raw, scrubbed;
  std::vector<int> comment_cols;
  internal::ScrubLines(content, &raw, &scrubbed, &comment_cols);
  Suppressions sup = ParseSuppressions(raw, comment_cols);

  std::vector<Finding> candidates;
  LineRuleFindings(path, raw, scrubbed, tables.fallible_names, &candidates);
  internal::FlowResult flow =
      internal::RunFlowPass(path, Tokenize(content), tables);
  for (Finding& f : flow.findings) candidates.push_back(std::move(f));

  FileAnalysis out;
  std::set<std::pair<std::string, std::string>> used_allow;
  // NOLINT comments are consulted before the allowlist, so an inline
  // suppression always counts as "used" even when an allowlist entry
  // would also cover the finding.
  const auto comment_suppressed = [&](int line_1based,
                                      const std::string& rule) {
    const size_t idx = static_cast<size_t>(line_1based - 1);
    if (line_1based <= 0 || idx >= sup.by_line.size()) return false;
    bool any = false;
    for (const auto& [ci, r] : sup.by_line[idx]) {
      if (r == "*" || r == rule) {
        sup.comments[ci].used = true;
        any = true;
      }
    }
    return any;
  };
  const auto allowed = [&](const std::string& rule) {
    for (const AllowEntry& e : options.allow) {
      if (e.file == path && (e.rule == "*" || e.rule == rule)) {
        used_allow.insert({e.file, e.rule});
        return true;
      }
    }
    return false;
  };

  for (Finding& f : candidates) {
    if (comment_suppressed(f.line, f.rule)) continue;
    if (allowed(f.rule)) continue;
    out.findings.push_back(std::move(f));
  }
  for (LockEdge& e : flow.edges) {
    if (comment_suppressed(e.line, "sgcl-R9")) continue;
    if (allowed("sgcl-R9")) continue;
    out.edges.push_back(std::move(e));
  }
  if (options.report_stale_nolint) {
    for (const NolintComment& c : sup.comments) {
      if (c.eligible && !c.used) {
        out.stale_nolints.push_back({c.line_idx + 1, c.rules});
      }
    }
  }
  out.used_allow.assign(used_allow.begin(), used_allow.end());
  SortFindings(&out.findings);
  return out;
}

std::string ApplyFixes(const std::string& path, const std::string& content,
                       const std::vector<Finding>& findings) {
  std::vector<FixEdit> edits;
  for (const Finding& f : findings) {
    if (f.file != path) continue;
    edits.insert(edits.end(), f.fixes.begin(), f.fixes.end());
  }
  if (edits.empty()) return content;
  // Bottom-up, right-to-left so earlier offsets stay valid.
  std::sort(edits.begin(), edits.end(), [](const FixEdit& a, const FixEdit& b) {
    if (a.line != b.line) return a.line > b.line;
    return a.col > b.col;
  });
  std::vector<std::string> lines;
  {
    std::string cur;
    for (char c : content) {
      if (c == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    lines.push_back(cur);
  }
  int last_line = -1;
  int last_col = -1;
  for (const FixEdit& e : edits) {
    if (e.line < 1 || static_cast<size_t>(e.line) > lines.size()) continue;
    std::string& line = lines[e.line - 1];
    if (e.col < 0 || static_cast<size_t>(e.col) > line.size()) continue;
    // Overlap (same span edited twice): keep the first-applied edit.
    if (e.line == last_line && e.col + e.len > last_col) continue;
    const size_t len =
        std::min(static_cast<size_t>(e.len), line.size() - e.col);
    line.replace(static_cast<size_t>(e.col), len, e.replacement);
    last_line = e.line;
    last_col = e.col;
  }
  std::string out;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (i > 0) out += '\n';
    out += lines[i];
  }
  return out;
}

Linter::Linter(LintOptions options) : options_(std::move(options)) {}

void Linter::AddFile(const std::string& path, const std::string& content) {
  FileDecls decls = ExtractDecls(content);
  std::set<std::string> names(fallible_names_.begin(), fallible_names_.end());
  names.insert(decls.fallible_names.begin(), decls.fallible_names.end());
  fallible_names_.assign(names.begin(), names.end());
  files_.push_back({path, content, std::move(decls)});
}

std::vector<Finding> MergeAnalyses(const std::vector<std::string>& paths,
                                   const std::vector<FileAnalysis>& analyses,
                                   const LintOptions& options) {
  std::vector<Finding> findings;
  std::vector<LockEdge> edges;
  std::set<std::pair<std::string, std::string>> used_allow;
  const size_t n = std::min(paths.size(), analyses.size());
  for (size_t i = 0; i < n; ++i) {
    const FileAnalysis& a = analyses[i];
    findings.insert(findings.end(), a.findings.begin(), a.findings.end());
    edges.insert(edges.end(), a.edges.begin(), a.edges.end());
    for (const StaleNolint& s : a.stale_nolints) {
      Finding f;
      f.file = paths[i];
      f.line = s.line;
      f.rule = "sgcl-nolint";
      f.severity = Severity::kWarning;
      f.message = StrFormat("NOLINT(%s) suppresses nothing here; remove it",
                            s.rules.c_str());
      findings.push_back(std::move(f));
    }
    used_allow.insert(a.used_allow.begin(), a.used_allow.end());
  }
  std::vector<Finding> cycles = LockCycleFindings(edges);
  for (Finding& f : cycles) findings.push_back(std::move(f));
  if (options.report_stale_nolint) {
    for (const AllowEntry& e : options.allow) {
      if (used_allow.count({e.file, e.rule}) != 0) continue;
      const std::string where = options.allowlist_path.empty()
                                    ? e.file
                                    : options.allowlist_path;
      Finding f;
      f.file = where;
      f.line = e.line;
      f.rule = "sgcl-nolint";
      f.severity = Severity::kWarning;
      f.message = StrFormat("allowlist entry '%s:%s' no longer suppresses "
                            "anything; delete it",
                            e.file.c_str(), e.rule.c_str());
      findings.push_back(std::move(f));
    }
  }
  SortFindings(&findings);
  return findings;
}

std::vector<Finding> Linter::Run() const {
  std::vector<FileDecls> decls;
  decls.reserve(files_.size());
  for (const FileEntry& file : files_) decls.push_back(file.decls);
  const GlobalTables tables = BuildTables(decls);

  std::vector<std::string> paths;
  std::vector<FileAnalysis> analyses;
  paths.reserve(files_.size());
  analyses.reserve(files_.size());
  for (const FileEntry& file : files_) {
    paths.push_back(file.path);
    analyses.push_back(AnalyzeFile(file.path, file.content, tables, options_));
  }
  return MergeAnalyses(paths, analyses, options_);
}

std::string ExpectedIncludeGuard(const std::string& path) {
  std::string rel = path;
  if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
  std::string guard = "SGCL_";
  for (char c : rel) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

std::string FormatText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += StrFormat("%s:%d: %s: [%s] %s\n", f.file.c_str(), f.line,
                     SeverityToString(f.severity), f.rule.c_str(),
                     f.message.c_str());
  }
  return out;
}

std::string FormatJson(const std::vector<Finding>& findings) {
  std::string out = StrFormat("{\"count\":%zu,\"findings\":[",
                              findings.size());
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ',';
    out += StrFormat(
        "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"severity\":\"%s\","
        "\"message\":\"%s\"}",
        JsonEscape(f.file).c_str(), f.line, f.rule.c_str(),
        SeverityToString(f.severity), JsonEscape(f.message).c_str());
  }
  out += "]}\n";
  return out;
}

}  // namespace sgcl::lint
