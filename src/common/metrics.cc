#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/string_util.h"

namespace sgcl {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      exemplars_(bounds_.size() + 1) {
  SGCL_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

size_t Histogram::BucketIndex(double v) const {
  // First bound >= v is the smallest bucket whose "v <= bound" contract
  // holds; past-the-end lands in the overflow bucket.
  return std::lower_bound(bounds_.begin(), bounds_.end(), v) -
         bounds_.begin();
}

void Histogram::Observe(double v) {
  const size_t i = BucketIndex(v);
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::ObserveWithExemplar(double v, uint64_t trace_id) {
  Observe(v);
  if (trace_id == 0) return;
  ExemplarSlot& slot = exemplars_[BucketIndex(v)];
  slot.value.store(v, std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

std::vector<Exemplar> Histogram::Exemplars() const {
  std::vector<Exemplar> out(exemplars_.size());
  for (size_t i = 0; i < exemplars_.size(); ++i) {
    out[i].trace_id = exemplars_[i].trace_id.load(std::memory_order_relaxed);
    out[i].value = exemplars_[i].value.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& e : exemplars_) {
    e.trace_id.store(0, std::memory_order_relaxed);
    e.value.store(0.0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = h->bounds();
    data.buckets = h->BucketCounts();
    data.exemplars = h->Exemplars();
    data.count = h->count();
    data.sum = h->sum();
    snap.histograms[name] = std::move(data);
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry& MetricsRegistry::Global() {
  // NOLINTNEXTLINE(sgcl-R5): intentionally leaked singleton
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  return StrFormat("%.17g", v);
}

std::string PrometheusMetricName(const std::string& name) {
  std::string out = "sgcl_";
  for (char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

double MetricsSnapshot::HistogramData::Quantile(double q) const {
  if (count <= 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const double prev = cumulative;
    cumulative += static_cast<double>(buckets[i]);
    if (cumulative < rank || buckets[i] == 0) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: no finite upper edge to interpolate toward.
      return bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                            : bounds.back();
    }
    const double upper = bounds[i];
    const double lower = i == 0 ? std::min(0.0, upper) : bounds[i - 1];
    const double fraction =
        (rank - prev) / static_cast<double>(buckets[i]);
    return lower + (upper - lower) * fraction;
  }
  return bounds.empty() ? std::numeric_limits<double>::quiet_NaN()
                        : bounds.back();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%lld", JsonEscape(name).c_str(),
                     static_cast<long long>(v));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":%s", JsonEscape(name).c_str(),
                     JsonDouble(v).c_str());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += StrFormat("\"%s\":{\"bounds\":[", JsonEscape(name).c_str());
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ',';
      out += JsonDouble(h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out += ',';
      out += StrFormat("%lld", static_cast<long long>(h.buckets[i]));
    }
    out += "],\"exemplars\":[";
    bool first_ex = true;
    for (size_t i = 0; i < h.exemplars.size(); ++i) {
      if (h.exemplars[i].trace_id == 0) continue;
      if (!first_ex) out += ',';
      first_ex = false;
      out += StrFormat(
          "{\"bucket\":%llu,\"trace_id\":\"%016llx\",\"value\":%s}",
          static_cast<unsigned long long>(i),
          static_cast<unsigned long long>(h.exemplars[i].trace_id),
          JsonDouble(h.exemplars[i].value).c_str());
    }
    out += StrFormat("],\"count\":%lld,\"sum\":%s",
                     static_cast<long long>(h.count),
                     JsonDouble(h.sum).c_str());
    out += StrFormat(",\"p50\":%s,\"p95\":%s,\"p99\":%s}",
                     JsonDouble(h.Quantile(0.50)).c_str(),
                     JsonDouble(h.Quantile(0.95)).c_str(),
                     JsonDouble(h.Quantile(0.99)).c_str());
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  // Sample values use Prometheus' own non-finite spellings, not JSON's.
  const auto prom_double = [](double v) -> std::string {
    if (std::isnan(v)) return "NaN";
    if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
    return StrFormat("%.17g", v);
  };
  std::string out;
  for (const auto& [name, v] : counters) {
    const std::string prom = PrometheusMetricName(name);
    out += StrFormat("# TYPE %s counter\n%s %lld\n", prom.c_str(),
                     prom.c_str(), static_cast<long long>(v));
  }
  for (const auto& [name, v] : gauges) {
    const std::string prom = PrometheusMetricName(name);
    out += StrFormat("# TYPE %s gauge\n%s %s\n", prom.c_str(), prom.c_str(),
                     prom_double(v).c_str());
  }
  for (const auto& [name, h] : histograms) {
    const std::string prom = PrometheusMetricName(name);
    out += StrFormat("# TYPE %s histogram\n", prom.c_str());
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le =
          i < h.bounds.size() ? prom_double(h.bounds[i]) : "+Inf";
      out += StrFormat("%s_bucket{le=\"%s\"} %lld", prom.c_str(),
                       le.c_str(), static_cast<long long>(cumulative));
      if (i < h.exemplars.size() && h.exemplars[i].trace_id != 0) {
        out += StrFormat(
            " # {trace_id=\"%016llx\"} %s",
            static_cast<unsigned long long>(h.exemplars[i].trace_id),
            prom_double(h.exemplars[i].value).c_str());
      }
      out += '\n';
    }
    out += StrFormat("%s_sum %s\n", prom.c_str(),
                     prom_double(h.sum).c_str());
    out += StrFormat("%s_count %lld\n", prom.c_str(),
                     static_cast<long long>(h.count));
  }
  return out;
}

void AppendMetricsJsonl(const MetricsSnapshot& snapshot, std::ostream* out) {
  SGCL_CHECK(out != nullptr);
  *out << snapshot.ToJson() << '\n';
}

}  // namespace sgcl
