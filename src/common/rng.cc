#include "common/rng.h"

#include <cmath>

namespace sgcl {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int64_t Rng::UniformInt(int64_t n) {
  SGCL_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t un = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return static_cast<int64_t>(x % un);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  SGCL_CHECK_LT(lo, hi);
  return lo + UniformInt(hi - lo);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform() < p;
}

int64_t Rng::Categorical(const std::vector<double>& weights) {
  SGCL_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  SGCL_CHECK_GT(total, 0.0);
  double x = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return static_cast<int64_t>(i);
    x -= w;
  }
  // Floating-point slack: return the last positive-weight entry.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

int64_t Rng::Poisson(double mean) {
  SGCL_CHECK_GE(mean, 0.0);
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= Uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large means.
  const double x = Normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<int64_t>(std::lround(x));
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  SGCL_CHECK_GE(n, 0);
  SGCL_CHECK_GE(k, 0);
  SGCL_CHECK_LE(k, n);
  std::vector<int64_t> pool(n);
  for (int64_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: the first k entries are the sample.
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = UniformInt(i, n);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::vector<int64_t> Rng::WeightedSampleWithoutReplacement(
    const std::vector<double>& weights, int64_t k) {
  const int64_t n = static_cast<int64_t>(weights.size());
  SGCL_CHECK_GE(k, 0);
  SGCL_CHECK_LE(k, n);
  std::vector<double> w(weights);
  for (double& x : w) {
    if (!(x > 0.0)) x = 0.0;
  }
  std::vector<int64_t> picked;
  picked.reserve(k);
  std::vector<bool> used(n, false);
  double total = 0.0;
  for (double x : w) total += x;
  for (int64_t t = 0; t < k; ++t) {
    if (total <= 1e-12) {
      // All remaining weight is zero: fall back to uniform over unused.
      std::vector<int64_t> remaining;
      for (int64_t i = 0; i < n; ++i) {
        if (!used[i]) remaining.push_back(i);
      }
      Shuffle(&remaining);
      for (int64_t i = 0; i < k - t; ++i) picked.push_back(remaining[i]);
      return picked;
    }
    double x = Uniform() * total;
    int64_t choice = -1;
    for (int64_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      if (x < w[i]) {
        choice = i;
        break;
      }
      x -= w[i];
    }
    if (choice < 0) {
      // Floating-point slack: pick the last unused positive-weight entry.
      for (int64_t i = n; i-- > 0;) {
        if (!used[i] && w[i] > 0.0) {
          choice = i;
          break;
        }
      }
      SGCL_CHECK_GE(choice, 0);
    }
    used[choice] = true;
    total -= w[choice];
    w[choice] = 0.0;
    picked.push_back(choice);
  }
  return picked;
}

Rng Rng::Fork() { return Rng(Next()); }

RngState Rng::GetState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::SetState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace sgcl
