// Shared parallel runtime: a lazily-initialized global ThreadPool plus a
// ParallelFor helper for row-partitioned kernels.
//
// Sizing: the pool holds SGCL_NUM_THREADS workers (env var; default
// std::thread::hardware_concurrency). With one thread — or when a range is
// no larger than its grain — ParallelFor runs the body inline on the
// calling thread, so `SGCL_NUM_THREADS=1` is bitwise-identical to the
// sequential code.
//
// Determinism contract: ParallelFor partitions [begin, end) into disjoint
// contiguous chunks, one body invocation per chunk. Callers must only
// write state owned by their chunk (e.g. disjoint output/grad rows); under
// that discipline results are identical for every thread count and no
// atomics are needed. Nested ParallelFor calls from inside a pool worker
// run inline, so parallel sections can be composed without deadlock.
#ifndef SGCL_COMMON_PARALLEL_H_
#define SGCL_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace sgcl {

// Strictly parses a thread-count override (the SGCL_NUM_THREADS
// environment variable). InvalidArgument on empty, non-numeric, or
// trailing-garbage input, on zero/negative counts, and on values that
// overflow int. The pool warns and falls back to the hardware default
// instead of silently misconfiguring. Exposed for tests.
Result<int> ParseThreadCount(const std::string& value);

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped below by 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues `task` for execution on a worker thread.
  void Submit(std::function<void()> task);

  // True on a thread owned by any ThreadPool (used to run nested
  // parallel sections inline).
  static bool InWorkerThread();

 private:
  // Blocks in cv_.wait via std::unique_lock, which libc++ does not
  // annotate as a scoped capability; clang's analysis cannot see the
  // lock and sgcl_lint's R8 (which models unique_lock) covers it.
  void WorkerLoop() SGCL_NO_THREAD_SAFETY_ANALYSIS;

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_ SGCL_GUARDED_BY(mu_);
  bool stop_ SGCL_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

// The process-wide pool, created on first use from SGCL_NUM_THREADS (or
// hardware_concurrency when unset/invalid).
ThreadPool& GlobalThreadPool();

// Worker count the global pool has (or would have) — 1 means sequential.
int ParallelRuntimeThreads();

// Replaces the global pool with one of `num_threads` workers (0 restores
// the SGCL_NUM_THREADS/hardware default). Must not be called while
// parallel work is in flight; intended for tests and benchmarks.
void SetParallelThreads(int num_threads);

// Runs fn(chunk_begin, chunk_end) over a disjoint contiguous partition of
// [begin, end). Chunks hold at least `grain` indices; when the whole range
// fits in one grain, the pool has a single thread, or the caller is
// already a pool worker, the body runs inline as fn(begin, end).
// Exceptions thrown by `fn` are rethrown on the calling thread (first one
// wins) after all chunks finish.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace sgcl

#endif  // SGCL_COMMON_PARALLEL_H_
