#include "common/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace sgcl {
namespace {

// A request (start line + headers) larger than this is rejected; bodies
// are ignored entirely (GET/HEAD have none we care about).
constexpr size_t kMaxRequestBytes = 8192;
// Per-socket recv/send deadline so one stalled client cannot hold the
// single-threaded accept loop hostage.
constexpr int kSocketTimeoutSec = 5;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    default:
      return "Error";
  }
}

void SetSocketTimeouts(int fd) {
  struct timeval tv;
  tv.tv_sec = kSocketTimeoutSec;
  tv.tv_usec = 0;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// Writes all of `data`, tolerating short writes; best-effort (the client
// may have gone away, which is its problem, not ours).
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, HttpHandler handler) {
  handlers_[path] = std::move(handler);
}

Status HttpServer::Start(int port) {
  if (running()) {
    return Status::InvalidArgument("HttpServer already running");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket() failed: %s", strerror(errno)));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Status::Internal(
        StrFormat("bind(127.0.0.1:%d) failed: %s", port, strerror(errno)));
    close(fd);
    return st;
  }
  if (listen(fd, /*backlog=*/16) < 0) {
    const Status st =
        Status::Internal(StrFormat("listen() failed: %s", strerror(errno)));
    close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    const Status st = Status::Internal(
        StrFormat("getsockname() failed: %s", strerror(errno)));
    close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() wakes a blocked accept() on Linux; the self-connect below
  // covers platforms where it does not.
  shutdown(listen_fd_, SHUT_RDWR);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd >= 0) {
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int client_fd = accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      // Any other accept failure while stopping is the shutdown wakeup;
      // outside shutdown it is unrecoverable for this loop either way.
      if (!stopping_.load(std::memory_order_acquire)) {
        SGCL_LOG(WARNING) << "telemetry accept() failed: " << strerror(errno);
      }
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      close(client_fd);
      return;
    }
    ServeConnection(client_fd);
    close(client_fd);
  }
}

void HttpServer::ServeConnection(int client_fd) {
  SetSocketTimeouts(client_fd);
  // Read until the end of the header block (or the size cap).
  std::string request;
  char buf[1024];
  bool have_headers = false;
  while (request.size() < kMaxRequestBytes) {
    const ssize_t n = recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
    if (request.find("\r\n\r\n") != std::string::npos ||
        request.find("\n\n") != std::string::npos) {
      have_headers = true;
      break;
    }
  }

  HttpResponse response;
  HttpRequest parsed;
  if (!have_headers) {
    response.status = request.size() >= kMaxRequestBytes ? 431 : 400;
    response.body = "bad request\n";
  } else {
    // Request line: METHOD SP target SP version.
    const size_t line_end = request.find_first_of("\r\n");
    const std::string line = request.substr(0, line_end);
    const size_t sp1 = line.find(' ');
    const size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      response.status = 400;
      response.body = "malformed request line\n";
    } else {
      parsed.method = line.substr(0, sp1);
      std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t qmark = target.find('?');
      if (qmark != std::string::npos) {
        parsed.query = target.substr(qmark + 1);
        target.resize(qmark);
      }
      parsed.path = target;
      if (parsed.method != "GET" && parsed.method != "HEAD") {
        response.status = 405;
        response.body = "only GET is supported\n";
      } else {
        const auto it = handlers_.find(parsed.path);
        if (it == handlers_.end()) {
          response.status = 404;
          response.body = "not found; endpoints:";
          for (const auto& [path, handler] : handlers_) {
            response.body += " " + path;
          }
          response.body += "\n";
        } else {
          response = it->second(parsed);
        }
      }
    }
  }

  std::string out = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, StatusText(response.status),
      response.content_type.c_str(), response.body.size());
  if (parsed.method != "HEAD") out += response.body;
  SendAll(client_fd, out);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace sgcl
