#include "common/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace sgcl {
namespace {

// A request's start line + headers larger than this is rejected with
// 431; bodies are bounded separately by HttpServerOptions.
constexpr size_t kMaxHeaderBytes = 8192;
// Send deadline so one stalled reader cannot hold a serving thread.
constexpr int kSendTimeoutSec = 5;

const char* StatusText(int status) {
  switch (status) {
    case 100:
      return "Continue";
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

void SetRecvTimeout(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  struct timeval snd;
  snd.tv_sec = kSendTimeoutSec;
  snd.tv_usec = 0;
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &snd, sizeof(snd));
}

// Writes all of `data`, tolerating short writes; best-effort (the client
// may have gone away, which is its problem, not ours).
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

// Graceful teardown for connections whose request stream was not fully
// consumed (oversized/truncated bodies, malformed heads). Closing with
// unread data pending makes the kernel send RST, which can destroy the
// in-flight error response before the client reads it; half-closing the
// write side and draining until EOF (bounded; SO_RCVTIMEO still applies)
// lets the response land first.
void ShutdownDrain(int fd) {
  shutdown(fd, SHUT_WR);
  char drain[4096];
  size_t drained = 0;
  constexpr size_t kMaxDrainBytes = 4u << 20;
  while (drained < kMaxDrainBytes) {
    const ssize_t n = recv(fd, drain, sizeof(drain), 0);
    if (n <= 0) break;
    drained += static_cast<size_t>(n);
  }
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Locates the end of the header block; supports \r\n\r\n and bare \n\n.
// Returns npos when incomplete; *body_start is the offset just past it.
size_t FindHeaderEnd(const std::string& buf, size_t* body_start) {
  const size_t crlf = buf.find("\r\n\r\n");
  const size_t lf = buf.find("\n\n");
  if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
    *body_start = crlf + 4;
    return crlf;
  }
  if (lf != std::string::npos) {
    *body_start = lf + 2;
    return lf;
  }
  return std::string::npos;
}

struct ParsedHead {
  HttpRequest request;
  std::string version;  // "HTTP/1.1", "HTTP/1.0", or empty when absent
  bool ok = false;
};

ParsedHead ParseHead(const std::string& head) {
  ParsedHead out;
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos <= head.size()) {
    size_t nl = head.find('\n', pos);
    if (nl == std::string::npos) nl = head.size();
    std::string line = head.substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
    if (nl == head.size()) break;
    pos = nl + 1;
  }
  if (lines.empty()) return out;

  // Request line: METHOD SP target [SP version].
  const std::string& line = lines[0];
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return out;
  out.request.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  out.version = line.substr(sp2 + 1);
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    out.request.query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  if (target.empty() || target[0] != '/') return out;
  out.request.path = target;

  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    const size_t colon = lines[i].find(':');
    if (colon == std::string::npos) return out;  // malformed header line
    out.request.headers[ToLower(Trim(lines[i].substr(0, colon)))] =
        Trim(lines[i].substr(colon + 1));
  }
  out.ok = true;
  return out;
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, HttpHandler handler) {
  handlers_[path]["GET"] = std::move(handler);
}

void HttpServer::Handle(const std::string& method, const std::string& path,
                        HttpHandler handler) {
  handlers_[path][method] = std::move(handler);
}

void HttpServer::HandlePrefix(const std::string& prefix,
                              HttpHandler handler) {
  prefix_handlers_[prefix] = std::move(handler);
}

Status HttpServer::Start(int port) { return Start(port, HttpServerOptions{}); }

Status HttpServer::Start(int port, const HttpServerOptions& options) {
  if (running()) {
    return Status::InvalidArgument("HttpServer already running");
  }
  options_ = options;
  options_.num_threads = std::max(1, options_.num_threads);
  options_.idle_timeout_ms = std::max(1, options_.idle_timeout_ms);
  options_.max_requests_per_connection =
      std::max(1, options_.max_requests_per_connection);
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket() failed: %s", strerror(errno)));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status st = Status::Internal(
        StrFormat("bind(127.0.0.1:%d) failed: %s", port, strerror(errno)));
    close(fd);
    return st;
  }
  if (listen(fd, /*backlog=*/64) < 0) {
    const Status st =
        Status::Internal(StrFormat("listen() failed: %s", strerror(errno)));
    close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    const Status st = Status::Internal(
        StrFormat("getsockname() failed: %s", strerror(errno)));
    close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  threads_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; ++i) {
    threads_.emplace_back([this] { AcceptLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // shutdown() wakes blocked accept()s on Linux; the self-connects below
  // cover platforms where it does not (one per serving thread).
  shutdown(listen_fd_, SHUT_RDWR);
  for (size_t i = 0; i < threads_.size(); ++i) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
    close(fd);
  }
  // Kick active (possibly keep-alive-idle) connections so their serving
  // threads observe EOF promptly instead of waiting out the timeout.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : active_fds_) shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  close(listen_fd_);
  listen_fd_ = -1;
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int client_fd = accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) {
      if (errno == EINTR) continue;
      // Any other accept failure while stopping is the shutdown wakeup;
      // outside shutdown it is unrecoverable for this loop either way.
      if (!stopping_.load(std::memory_order_acquire)) {
        SGCL_LOG(WARNING) << "http accept() failed: " << strerror(errno);
      }
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      close(client_fd);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      active_fds_.insert(client_fd);
    }
    ServeConnection(client_fd);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      active_fds_.erase(client_fd);
    }
    close(client_fd);
  }
}

HttpResponse HttpServer::MakeError(int status,
                                   const std::string& message) const {
  HttpResponse response;
  response.status = status;
  if (options_.json_errors) {
    response.content_type = "application/json";
    response.body = StrFormat("{\"error\":{\"code\":%d,\"message\":\"%s\"}}\n",
                              status, JsonEscape(message).c_str());
  } else {
    response.body = message + "\n";
  }
  return response;
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) const {
  const auto path_it = handlers_.find(request.path);
  if (path_it == handlers_.end()) {
    // No exact match: longest registered prefix wins (GET/HEAD only,
    // mirroring the path-only Handle overload).
    const HttpHandler* best = nullptr;
    size_t best_len = 0;
    for (const auto& [prefix, handler] : prefix_handlers_) {
      if (prefix.size() >= best_len &&
          request.path.compare(0, prefix.size(), prefix) == 0) {
        best = &handler;
        best_len = prefix.size();
      }
    }
    if (best != nullptr) {
      if (request.method != "GET" && request.method != "HEAD") {
        return MakeError(405, "method not allowed; supported: GET");
      }
      return (*best)(request);
    }
    std::string message = "not found; endpoints:";
    for (const auto& [path, by_method] : handlers_) message += " " + path;
    return MakeError(404, message);
  }
  // GET handlers also answer HEAD; the body is omitted at the send site.
  const std::string& lookup =
      request.method == "HEAD" ? std::string("GET") : request.method;
  const auto method_it = path_it->second.find(lookup);
  if (method_it == path_it->second.end()) {
    std::string message = "method not allowed; supported:";
    for (const auto& [method, handler] : path_it->second) {
      message += " " + method;
    }
    return MakeError(405, message);
  }
  return method_it->second(request);
}

void HttpServer::ServeConnection(int client_fd) {
  SetRecvTimeout(client_fd, options_.idle_timeout_ms);
  std::string buffer;  // bytes received but not yet consumed
  int served = 0;
  bool keep_open = true;
  while (keep_open && !stopping_.load(std::memory_order_acquire)) {
    // Phase 1: read up to the end of the header block.
    size_t body_start = 0;
    size_t header_end = FindHeaderEnd(buffer, &body_start);
    bool peer_gone = false;
    while (header_end == std::string::npos && buffer.size() < kMaxHeaderBytes) {
      char buf[2048];
      const ssize_t n = recv(client_fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        peer_gone = true;
        break;
      }
      buffer.append(buf, static_cast<size_t>(n));
      header_end = FindHeaderEnd(buffer, &body_start);
    }
    if (header_end == std::string::npos) {
      // Idle keep-alive close (empty buffer) is silent; truncated or
      // oversized header blocks get a terminal error response.
      if (!buffer.empty()) {
        const int status = buffer.size() >= kMaxHeaderBytes ? 431 : 400;
        const HttpResponse response = MakeError(
            status, status == 431 ? "request header block too large"
                                  : "truncated request");
        SendAll(client_fd, StrFormat("HTTP/1.1 %d %s\r\nContent-Type: %s\r\n"
                                     "Content-Length: %zu\r\n"
                                     "Connection: close\r\n\r\n",
                                     response.status,
                                     StatusText(response.status),
                                     response.content_type.c_str(),
                                     response.body.size()) +
                               response.body);
        requests_served_.fetch_add(1, std::memory_order_relaxed);
        if (!peer_gone) ShutdownDrain(client_fd);
      }
      return;
    }

    ParsedHead head = ParseHead(buffer.substr(0, header_end));
    HttpRequest& request = head.request;
    HttpResponse response;
    bool framing_broken = false;
    if (!head.ok) {
      response = MakeError(400, "malformed request");
      framing_broken = true;
    } else {
      // Phase 2: read the Content-Length framed body (if any).
      size_t content_length = 0;
      bool length_ok = true;
      const auto cl = request.headers.find("content-length");
      if (cl != request.headers.end()) {
        errno = 0;
        char* end = nullptr;
        const unsigned long long v = strtoull(cl->second.c_str(), &end, 10);
        if (errno != 0 || end == cl->second.c_str() || *end != '\0') {
          length_ok = false;
        } else {
          content_length = static_cast<size_t>(v);
        }
      }
      if (!length_ok) {
        response = MakeError(400, "invalid Content-Length");
        framing_broken = true;
      } else if (content_length > options_.max_body_bytes) {
        response = MakeError(
            413, StrFormat("body of %zu bytes exceeds the %zu-byte limit",
                           content_length, options_.max_body_bytes));
        framing_broken = true;  // unread body: cannot reuse the stream
      } else {
        const auto expect = request.headers.find("expect");
        if (expect != request.headers.end() &&
            ToLower(expect->second) == "100-continue" && content_length > 0) {
          SendAll(client_fd, "HTTP/1.1 100 Continue\r\n\r\n");
        }
        while (buffer.size() < body_start + content_length) {
          char buf[4096];
          const ssize_t n = recv(client_fd, buf, sizeof(buf), 0);
          if (n <= 0) break;
          buffer.append(buf, static_cast<size_t>(n));
        }
        if (buffer.size() < body_start + content_length) {
          response = MakeError(400, "truncated request body");
          framing_broken = true;
        } else {
          request.body = buffer.substr(body_start, content_length);
          buffer.erase(0, body_start + content_length);
          response = Dispatch(request);
        }
      }
    }

    ++served;
    keep_open = options_.keep_alive && !framing_broken &&
                served < options_.max_requests_per_connection &&
                !stopping_.load(std::memory_order_acquire);
    if (keep_open) {
      const auto conn = request.headers.find("connection");
      const std::string conn_value =
          conn == request.headers.end() ? "" : ToLower(conn->second);
      if (head.version == "HTTP/1.0") {
        keep_open = conn_value == "keep-alive";
      } else {
        keep_open = conn_value != "close";
      }
    }

    std::string out = StrFormat(
        "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n",
        response.status, StatusText(response.status),
        response.content_type.c_str(), response.body.size());
    for (const auto& [name, value] : response.extra_headers) {
      out += name + ": " + value + "\r\n";
    }
    out += keep_open ? "Connection: keep-alive\r\n\r\n"
                     : "Connection: close\r\n\r\n";
    if (request.method != "HEAD") out += response.body;
    SendAll(client_fd, out);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (framing_broken) {
      ShutdownDrain(client_fd);
      return;
    }
  }
}

}  // namespace sgcl
