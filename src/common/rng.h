// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that experiments are bit-reproducible. The generator is
// xoshiro256** seeded through splitmix64, which is fast, high-quality, and
// has a tiny state that is cheap to fork per-worker.
#ifndef SGCL_COMMON_RNG_H_
#define SGCL_COMMON_RNG_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace sgcl {

// Complete serializable state of an Rng stream: the xoshiro256** words
// plus the Box-Muller spare. Restoring it resumes the stream at exactly
// the draw where GetState was taken — the checkpoint/resume contract
// (core/train_state.h) depends on this being the *whole* state.
struct RngState {
  std::array<uint64_t, 4> s{};
  bool has_cached_normal = false;
  double cached_normal = 0.0;

  bool operator==(const RngState& other) const {
    return s == other.s && has_cached_normal == other.has_cached_normal &&
           cached_normal == other.cached_normal;
  }
};

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform in [0, 1).
  double Uniform();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);
  // Uniform integer in [lo, hi). Requires lo < hi.
  int64_t UniformInt(int64_t lo, int64_t hi);
  // Standard normal via Box-Muller.
  double Normal();
  double Normal(double mean, double stddev);
  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);
  // Samples an index in [0, weights.size()) proportionally to weights.
  // Non-positive weights are treated as zero; requires a positive total.
  int64_t Categorical(const std::vector<double>& weights);
  // Poisson-distributed count with the given mean (Knuth for small means).
  int64_t Poisson(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (int64_t i = static_cast<int64_t>(v->size()) - 1; i > 0; --i) {
      int64_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  // k distinct indices sampled uniformly from [0, n), in random order.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  // k distinct indices from [0, n) sampled *without replacement* with
  // probability proportional to weights (sequential draw-and-remove).
  // Entries with non-positive weight are only drawn once all positive-weight
  // entries are exhausted. Requires 0 <= k <= n.
  std::vector<int64_t> WeightedSampleWithoutReplacement(
      const std::vector<double>& weights, int64_t k);

  // An independent generator derived from this one's stream.
  Rng Fork();

  // Snapshot / restore of the full stream state (checkpointing).
  RngState GetState() const;
  void SetState(const RngState& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sgcl

#endif  // SGCL_COMMON_RNG_H_
