// Clang-style thread-safety capability annotations as zero-cost macros.
//
// Under Clang the macros expand to __attribute__((...)) thread-safety
// attributes, so a `clang++ -Wthread-safety -Werror` build is a second,
// independent checker of the lock discipline sgcl_lint enforces with
// rules R8-R10 (DESIGN.md §9). Under every other compiler they expand
// to nothing — tests/common/thread_annotations_test.cc asserts the
// empty expansion — so annotating code costs zero bytes and zero
// cycles everywhere.
//
// Annotation recipe for a new mutex-guarded structure:
//   class Board {
//    public:
//     void Publish(int v) {
//       std::lock_guard<std::mutex> lock(mu_);
//       value_ = v;                       // OK: mu_ held
//     }
//     int Read() const SGCL_REQUIRES(mu_) { return value_; }
//    private:
//     mutable std::mutex mu_;
//     int value_ SGCL_GUARDED_BY(mu_) = 0;
//   };
// Every member the mutex protects gets SGCL_GUARDED_BY(mu_); methods
// that expect the caller to hold the lock get SGCL_REQUIRES(mu_).
// Pointer members whose *pointee* (not the pointer) is guarded use
// SGCL_PT_GUARDED_BY. Functions the analysis cannot model (typically
// std::condition_variable waits, which need std::unique_lock — not a
// scoped capability under libc++'s annotations) are marked
// SGCL_NO_THREAD_SAFETY_ANALYSIS with a comment; sgcl_lint's R8 does
// model std::unique_lock, so those functions stay machine-checked.
//
// The clang CI job builds with libc++ and
// -D_LIBCPP_ENABLE_THREAD_SAFETY_ANNOTATIONS so std::mutex and
// std::lock_guard themselves carry capability attributes.
#ifndef SGCL_COMMON_THREAD_ANNOTATIONS_H_
#define SGCL_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SGCL_NO_THREAD_SAFETY_ATTRIBUTES)
#define SGCL_TS_ATTRIBUTE_(x) __attribute__((x))
#else
#define SGCL_TS_ATTRIBUTE_(x)
#endif

// On a class: instances are capabilities (lockable things). `x` is the
// capability kind shown in diagnostics, e.g. SGCL_CAPABILITY("mutex").
#define SGCL_CAPABILITY(x) SGCL_TS_ATTRIBUTE_(capability(x))

// On an RAII class whose constructor acquires and destructor releases a
// capability (lock_guard-shaped types).
#define SGCL_SCOPED_CAPABILITY SGCL_TS_ATTRIBUTE_(scoped_lockable)

// On a data member: reads and writes require holding `x`.
#define SGCL_GUARDED_BY(x) SGCL_TS_ATTRIBUTE_(guarded_by(x))

// On a pointer member: dereferencing requires holding `x` (the pointer
// value itself is not guarded).
#define SGCL_PT_GUARDED_BY(x) SGCL_TS_ATTRIBUTE_(pt_guarded_by(x))

// On a function: the caller must hold the named capabilities.
#define SGCL_REQUIRES(...) \
  SGCL_TS_ATTRIBUTE_(requires_capability(__VA_ARGS__))

// On a function: the caller must hold the capabilities in shared mode.
#define SGCL_REQUIRES_SHARED(...) \
  SGCL_TS_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

// On a function: acquires the named capabilities (held on return).
#define SGCL_ACQUIRE(...) \
  SGCL_TS_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define SGCL_ACQUIRE_SHARED(...) \
  SGCL_TS_ATTRIBUTE_(acquire_shared_capability(__VA_ARGS__))

// On a function: releases the named capabilities (must be held on entry).
#define SGCL_RELEASE(...) \
  SGCL_TS_ATTRIBUTE_(release_capability(__VA_ARGS__))
#define SGCL_RELEASE_SHARED(...) \
  SGCL_TS_ATTRIBUTE_(release_shared_capability(__VA_ARGS__))

// On a function: attempts acquisition; `...` starts with the bool/int
// success value, then the capabilities.
#define SGCL_TRY_ACQUIRE(...) \
  SGCL_TS_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the named capabilities
// (deadlock guard for functions that acquire them internally).
#define SGCL_EXCLUDES(...) SGCL_TS_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

// On a function returning a reference/pointer to a capability.
#define SGCL_RETURN_CAPABILITY(x) SGCL_TS_ATTRIBUTE_(lock_returned(x))

// On ordering declarations between capabilities (documents the global
// acquisition order; sgcl_lint R9 derives the order from code instead).
#define SGCL_ACQUIRED_BEFORE(...) \
  SGCL_TS_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define SGCL_ACQUIRED_AFTER(...) \
  SGCL_TS_ATTRIBUTE_(acquired_after(__VA_ARGS__))

// Escape hatch: the function's body is exempt from the clang analysis.
// Used where the analysis cannot model the code (condition-variable
// waits through std::unique_lock); keep a comment at every use site.
#define SGCL_NO_THREAD_SAFETY_ANALYSIS \
  SGCL_TS_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // SGCL_COMMON_THREAD_ANNOTATIONS_H_
