#include "common/flags.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdlib>

#include "common/string_util.h"

namespace sgcl {
namespace {

const char* TypeName(int type) {
  static const char* kNames[] = {"string", "int", "int", "uint",
                                 "float",  "bool"};
  return kNames[type];
}

// Strict numeric parses: the whole token must convert, no trailing junk,
// no out-of-range values (the std::atoi path these replace turned
// "--epochs=abc" into 0 without a word).
bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseBool(const std::string& s, bool* out) {
  if (s == "true" || s == "1") {
    *out = true;
    return true;
  }
  if (s == "false" || s == "0") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

FlagSet::FlagSet(std::string usage) : usage_(std::move(usage)) {}

void FlagSet::Register(const std::string& name, Type type, void* target,
                       const std::string& help, bool required,
                       std::string default_str) {
  SGCL_CHECK(target != nullptr);
  SGCL_CHECK(Find(name) == nullptr);  // duplicate flag registration
  Flag flag;
  flag.name = name;
  flag.type = type;
  flag.target = target;
  flag.help = help;
  flag.required = required;
  flag.default_str = std::move(default_str);
  flags_.push_back(std::move(flag));
}

void FlagSet::String(const std::string& name, std::string* target,
                     const std::string& help, bool required) {
  Register(name, Type::kString, target, help, required,
           "\"" + *target + "\"");
}

void FlagSet::Int(const std::string& name, int* target,
                  const std::string& help, bool required) {
  Register(name, Type::kInt, target, help, required,
           StrFormat("%d", *target));
}

void FlagSet::Int64(const std::string& name, int64_t* target,
                    const std::string& help, bool required) {
  Register(name, Type::kInt64, target, help, required,
           StrFormat("%lld", static_cast<long long>(*target)));
}

void FlagSet::Uint64(const std::string& name, uint64_t* target,
                     const std::string& help, bool required) {
  Register(name, Type::kUint64, target, help, required,
           StrFormat("%llu", static_cast<unsigned long long>(*target)));
}

void FlagSet::Double(const std::string& name, double* target,
                     const std::string& help, bool required) {
  Register(name, Type::kDouble, target, help, required,
           StrFormat("%g", *target));
}

void FlagSet::Bool(const std::string& name, bool* target,
                   const std::string& help) {
  Register(name, Type::kBool, target, help, /*required=*/false,
           *target ? "true" : "false");
}

FlagSet::Flag* FlagSet::Find(const std::string& name) {
  for (Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  for (const Flag& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

Status FlagSet::SetValue(Flag* flag, const std::string& value,
                         bool has_value) {
  if (flag->type == Type::kBool) {
    bool parsed = true;
    if (has_value && !ParseBool(value, &parsed)) {
      return Status::InvalidArgument(StrFormat(
          "flag --%s expects true/false/1/0, got \"%s\"",
          flag->name.c_str(), value.c_str()));
    }
    *static_cast<bool*>(flag->target) = parsed;
    flag->set = true;
    return Status::OK();
  }
  if (!has_value) {
    return Status::InvalidArgument(
        StrFormat("flag --%s requires a value (--%s=<%s>)",
                  flag->name.c_str(), flag->name.c_str(),
                  TypeName(static_cast<int>(flag->type))));
  }
  bool ok = false;
  switch (flag->type) {
    case Type::kString:
      *static_cast<std::string*>(flag->target) = value;
      ok = true;
      break;
    case Type::kInt: {
      int64_t v = 0;
      ok = ParseInt64(value, &v) && v >= INT32_MIN && v <= INT32_MAX;
      if (ok) *static_cast<int*>(flag->target) = static_cast<int>(v);
      break;
    }
    case Type::kInt64: {
      int64_t v = 0;
      ok = ParseInt64(value, &v);
      if (ok) *static_cast<int64_t*>(flag->target) = v;
      break;
    }
    case Type::kUint64: {
      uint64_t v = 0;
      ok = ParseUint64(value, &v);
      if (ok) *static_cast<uint64_t*>(flag->target) = v;
      break;
    }
    case Type::kDouble: {
      double v = 0.0;
      ok = ParseDouble(value, &v);
      if (ok) *static_cast<double*>(flag->target) = v;
      break;
    }
    case Type::kBool:
      break;  // handled above
  }
  if (!ok) {
    return Status::InvalidArgument(
        StrFormat("flag --%s expects a value of type %s, got \"%s\"",
                  flag->name.c_str(),
                  TypeName(static_cast<int>(flag->type)), value.c_str()));
  }
  flag->set = true;
  return Status::OK();
}

Status FlagSet::Parse(int argc, char** argv, int first) {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::OK();
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument(
          StrFormat("unexpected positional argument \"%s\"", arg.c_str()));
    }
    const size_t eq = arg.find('=');
    const std::string name =
        eq == std::string::npos ? arg.substr(2) : arg.substr(2, eq - 2);
    const bool has_value = eq != std::string::npos;
    const std::string value = has_value ? arg.substr(eq + 1) : "";
    Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument(StrFormat(
          "unknown flag --%s (see --help)", name.c_str()));
    }
    SGCL_RETURN_NOT_OK(SetValue(flag, value, has_value));
  }
  for (const Flag& f : flags_) {
    if (f.required && !f.set) {
      return Status::InvalidArgument(
          StrFormat("missing required flag --%s", f.name.c_str()));
    }
  }
  return Status::OK();
}

bool FlagSet::IsSet(const std::string& name) const {
  const Flag* flag = Find(name);
  return flag != nullptr && flag->set;
}

std::string FlagSet::Help() const {
  std::string out = "usage: " + usage_ + " [--flags]\n";
  size_t width = 0;
  std::vector<std::string> heads;
  heads.reserve(flags_.size());
  for (const Flag& f : flags_) {
    std::string head = StrFormat("  --%s=<%s>", f.name.c_str(),
                                 TypeName(static_cast<int>(f.type)));
    width = std::max(width, head.size());
    heads.push_back(std::move(head));
  }
  for (size_t i = 0; i < flags_.size(); ++i) {
    const Flag& f = flags_[i];
    out += heads[i];
    out.append(width - heads[i].size() + 2, ' ');
    out += f.help;
    out += f.required ? " (required)"
                      : StrFormat(" (default: %s)", f.default_str.c_str());
    out += '\n';
  }
  return out;
}

}  // namespace sgcl
