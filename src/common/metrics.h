// Thread-safe process metrics: named counters, gauges, and fixed-bucket
// histograms behind a registry with consistent snapshots and JSONL export.
//
// Design goals, in order:
//  1. Negligible overhead on hot paths. Updates are single relaxed
//     atomics; instrumentation sites cache the metric pointer in a
//     function-local static so the name lookup happens once per process.
//  2. Always-on. Metrics accumulate unconditionally (unlike trace spans,
//     which are off unless enabled); "export or not" is the caller's
//     decision at snapshot time.
//  3. Deterministic output. Snapshots serialize metrics in name order, so
//     two runs with identical workloads produce byte-identical JSON
//     (modulo timing-valued metrics).
//
// Naming convention: "<subsystem>/<metric>[_<unit>]", e.g.
// "parallel/tasks", "time/generator_us". Stage-duration counters use the
// "time/" prefix and "_us" suffix; SgclTrainer turns exactly those into
// per-stage second tallies (see sgcl_trainer.h).
#ifndef SGCL_COMMON_METRICS_H_
#define SGCL_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace sgcl {

// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-write-wins floating-point metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// A recent-sample exemplar attached to a histogram bucket: the trace id
// of one observation that landed there, plus that observation's value.
// Lets the p99 bucket in /metrics link straight to an offending trace in
// /v1/traces. trace_id == 0 means "no exemplar recorded".
struct Exemplar {
  uint64_t trace_id = 0;
  double value = 0.0;
};

// Fixed-bucket histogram. Bucket i counts observations v <= bounds[i]
// (bounds ascending); one implicit overflow bucket counts the rest.
// Observe is lock-free: bucket counts and the total count are relaxed
// atomics, the running sum is a CAS loop (atomic<double>::fetch_add is
// not universally available pre-C++20 ABI).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  // Observe plus a last-write-wins exemplar stamp on the sample's
  // bucket. The (trace_id, value) pair is two relaxed stores, so a
  // racing reader may pair a trace id with a neighboring sample's value
  // — acceptable for "a recent sample", and race-free under TSan.
  // trace_id 0 degrades to plain Observe.
  void ObserveWithExemplar(double v, uint64_t trace_id);

  const std::vector<double>& bounds() const { return bounds_; }
  // bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<int64_t> BucketCounts() const;
  // bounds().size() + 1 entries aligned with BucketCounts().
  std::vector<Exemplar> Exemplars() const;
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  struct ExemplarSlot {
    std::atomic<uint64_t> trace_id{0};
    std::atomic<double> value{0.0};
  };

  size_t BucketIndex(double v) const;

  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::vector<ExemplarSlot> exemplars_;
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;
    std::vector<int64_t> buckets;  // bounds.size() + 1 (overflow last)
    std::vector<Exemplar> exemplars;  // aligned with buckets
    int64_t count = 0;
    double sum = 0.0;

    // Estimated q-quantile (q in [0,1], clamped) by linear interpolation
    // within the bucket holding the target rank, Prometheus
    // histogram_quantile-style: the first finite bucket interpolates from
    // min(0, bound), and ranks landing in the overflow bucket degrade to
    // the largest finite bound. NaN when the histogram is empty.
    double Quantile(double q) const;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  // One JSON object (single line, no trailing newline), keys sorted:
  // {"counters":{...},"gauges":{...},"histograms":{...}}. Histograms
  // include precomputed "p50"/"p95"/"p99" quantile estimates and any
  // per-bucket exemplars ({"bucket":i,"trace_id":"<hex>","value":v}).
  std::string ToJson() const;

  // Prometheus text exposition format (version 0.0.4): one "# TYPE" line
  // plus samples per metric, in name order. Metric names are sanitized
  // ('/' and any other character outside [a-zA-Z0-9_:] become '_') and
  // prefixed "sgcl_"; histograms expose cumulative "_bucket{le=...}"
  // series (including le="+Inf") plus "_sum" and "_count". Buckets with
  // an exemplar append the OpenMetrics suffix
  // `# {trace_id="<hex>"} <value>` to their sample line.
  std::string ToPrometheusText() const;
};

// Owner of all metrics. Get* registers on first use and returns a pointer
// that stays valid (and keeps accumulating across Reset) for the registry's
// lifetime, so call sites may cache it in a static.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // Re-registering an existing histogram ignores `bounds` (first wins).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;
  // Zeroes every metric's value; registrations (and cached pointers)
  // survive. Intended for tests and per-run isolation in tools.
  void Reset();

  // The process-wide registry all built-in instrumentation reports to.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SGCL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ SGCL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SGCL_GUARDED_BY(mu_);
};

// Writes `snapshot` as one JSONL record to `out` (JSON object + '\n').
void AppendMetricsJsonl(const MetricsSnapshot& snapshot, std::ostream* out);

// JSON string escaping for metric names / labels (shared with trace
// export and the CLI's epoch records).
std::string JsonEscape(const std::string& s);

// Formats a double as a JSON-safe token: finite values round-trip via
// "%.17g", non-finite values serialize as null (JSON has no NaN/Inf
// tokens, and coercing them to 0 would mask loss divergence).
std::string JsonDouble(double v);

// Sanitizes an internal metric name ("parallel/queue_wait_us") into a
// Prometheus-legal one ("sgcl_parallel_queue_wait_us").
std::string PrometheusMetricName(const std::string& name);

// RAII stage timer: adds the scope's wall time in microseconds to a
// counter on destruction. Prefer SGCL_TRACE_SPAN_TIMED (trace.h) at
// instrumentation sites so the stage also shows up in traces.
class ScopedUsTimer {
 public:
  explicit ScopedUsTimer(Counter* counter)
      : counter_(counter), start_(std::chrono::steady_clock::now()) {}
  ~ScopedUsTimer() {
    if (counter_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    counter_->Increment(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  }
  ScopedUsTimer(const ScopedUsTimer&) = delete;
  ScopedUsTimer& operator=(const ScopedUsTimer&) = delete;

 private:
  Counter* counter_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sgcl

#endif  // SGCL_COMMON_METRICS_H_
