// Scoped trace spans exported as chrome://tracing "trace event" JSON,
// plus request-scoped trace trees collected into a bounded in-memory
// ring buffer (served live at /v1/traces).
//
// Usage at an instrumentation site:
//   void Stage() {
//     SGCL_TRACE_SPAN("generator/encode_views");
//     ...
//   }
// or, to also accumulate the stage's wall time into a metrics counter
// (the "time/<stage>_us" convention consumed by SgclTrainer):
//   SGCL_TRACE_SPAN_TIMED("generator");   // counter "time/generator_us"
//
// Two independent sinks consume spans:
//
//  1. TraceCollector — the chrome-trace file exporter from PR 2.
//     Off by default; Enable(true) + WriteChromeTrace() produces a file
//     loadable by chrome://tracing / Perfetto.
//
//  2. TraceRing — an always-on bounded ring of *sampled* request/batch
//     traces. A root is opened with TraceRing::MaybeStartTrace() (a
//     deterministic every-Nth sampler; rate 0 disables), installed as
//     the thread's ambient TraceContext via ScopedTraceContext, and
//     every TraceSpan that runs under an ambient context becomes a node
//     in that trace's span tree (64-bit trace id + parent span id).
//     When the root span closes, the assembled tree is committed to the
//     ring (oldest trace evicted) and is queryable as JSON.
//
// Crossing a thread boundary is explicit: capture CurrentTraceContext()
// on the submitting side, install it with ScopedTraceContext inside the
// worker. Nothing is propagated implicitly through thread pools.
//
// Cost when disabled: a disabled span costs one relaxed atomic load for
// the chrome collector plus one thread-local read for the ambient
// context, and no clock reads (TIMED spans keep feeding their counter
// either way — metrics are always-on). MaybeStartTrace with rate 0 is
// one relaxed load.
//
// Span conventions: names are "<subsystem>/<what>" (stage-level, not
// per-node — spans inside tight loops belong at chunk granularity).
// Thread ids are small dense integers assigned in first-span order; tid 0
// is whichever thread traced first (normally the main thread).
#ifndef SGCL_COMMON_TRACE_H_
#define SGCL_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sgcl {

// Identity of the trace (and enclosing span) a piece of work belongs to.
// trace_id == 0 means "not traced"; span_id is the id of the innermost
// open span, i.e. the parent for any span started under this context.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }
};

// The calling thread's ambient context ({0,0} when untraced).
TraceContext CurrentTraceContext();

// Formats a trace id as the 16-digit lowercase hex string used in JSON,
// HTTP paths, and response headers; ParseTraceId accepts the same form
// (with or without a "0x" prefix) and returns 0 on malformed input.
std::string FormatTraceId(uint64_t trace_id);
uint64_t ParseTraceId(const std::string& text);

// RAII install/restore of the ambient TraceContext. Used to carry a
// context across explicit thread boundaries (batcher dispatch thread,
// prefetcher pool workers); installing an invalid context is a no-op so
// untraced work pays nothing.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
  bool installed_ = false;
};

// Process-wide sink for completed spans (chrome-trace export). Thread-safe.
class TraceCollector {
 public:
  struct Event {
    std::string name;
    int tid = 0;
    int64_t start_us = 0;  // relative to the collector's epoch
    int64_t dur_us = 0;
    // Trace-tree identity; all zero for spans recorded outside a
    // sampled trace. Exported as chrome "args" so offline tools can
    // rebuild the tree from the file.
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_span_id = 0;
  };

  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(Event event);
  void Clear();

  // Copy of all recorded events, ordered by (start_us, dur_us desc) so a
  // parent span sorts before the children it encloses.
  std::vector<Event> Events() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} with one "ph":"X"
  // complete event per span.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  // Microseconds since the collector's epoch (steady clock).
  int64_t NowUs() const;
  // Dense id of the calling thread, assigned on first use.
  static int CurrentThreadId();

  static TraceCollector& Global();

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_ SGCL_GUARDED_BY(mu_);
};

// Bounded ring of completed sampled traces. Always on (capacity bounds
// memory); sampling rate controls how many roots open. Thread-safe.
class TraceRing {
 public:
  struct Span {
    std::string name;
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    uint64_t parent_span_id = 0;  // 0 == root
    int tid = 0;
    int64_t start_us = 0;
    int64_t dur_us = 0;
  };

  struct Trace {
    uint64_t trace_id = 0;
    std::string root_name;
    int64_t start_us = 0;
    int64_t dur_us = 0;        // root span duration
    std::vector<Span> spans;   // includes the root, completion order
  };

  TraceRing();
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  // Sampling: rate in [0,1]; 0 disables. Implemented as a deterministic
  // every-Nth admission (period = round(1/rate)) off a relaxed atomic
  // counter — no RNG, so sampled runs stay reproducible (sgcl-R2).
  void SetSampleRate(double rate);
  double sample_rate() const;

  // Ring capacity in completed traces (default 256; minimum 1).
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  // Opens a new trace if the sampler admits this call. The returned
  // context has span_id == 0: the first TraceSpan run under it becomes
  // the trace's root, and its completion commits the trace to the ring.
  // Returns an invalid context (trace_id 0) when not sampled.
  TraceContext MaybeStartTrace();

  // Appends a completed span to its (open) trace; called by TraceSpan
  // and by instrumentation that synthesizes spans with explicit
  // timestamps (e.g. the micro-batcher's queue_wait). Spans for unknown
  // or already-committed traces are dropped. A span with
  // parent_span_id == 0 commits the trace.
  void RecordSpan(Span span);

  // Fresh span id (process-wide, never 0).
  static uint64_t NextSpanId();

  // Completed traces, newest first.
  std::vector<Trace> Traces() const;
  // Number of traces committed since construction/Clear (not capped by
  // capacity — used by tests and /v1/traces metadata).
  uint64_t committed_count() const;
  void Clear();  // drops completed traces and in-flight span buffers

  // JSON for /v1/traces: newest-first summaries filtered by
  // min_duration_us, capped at limit (<=0 means no cap). When
  // include_spans is set, each trace carries its flat span list —
  // the dump format tools/trace_report ingests.
  std::string ListJson(int64_t min_duration_us, int limit,
                       bool include_spans) const;
  // JSON span tree for /v1/traces/<id>; empty string when unknown.
  std::string TreeJson(uint64_t trace_id) const;

  static TraceRing& Global();

 private:
  void CommitLocked(uint64_t trace_id) SGCL_REQUIRES(mu_);

  std::atomic<uint64_t> period_{0};      // 0 == sampling off
  std::atomic<uint64_t> admit_seq_{0};   // every-Nth admission counter
  std::atomic<uint64_t> trace_seq_{0};   // mixed into trace ids

  mutable std::mutex mu_;
  size_t capacity_ SGCL_GUARDED_BY(mu_) = 256;
  uint64_t committed_count_ SGCL_GUARDED_BY(mu_) = 0;
  std::deque<Trace> completed_ SGCL_GUARDED_BY(mu_);  // oldest at front
  // In-flight traces: spans buffered until the root span closes. A
  // trace id is "open" iff it has an entry here; spans for other ids
  // (late arrivals after commit, foreign ids) are dropped.
  std::unordered_map<uint64_t, std::vector<Span>> pending_
      SGCL_GUARDED_BY(mu_);
};

// Records a completed span with explicit timestamps (collector-epoch
// µs, i.e. TraceCollector::NowUs values) as a child of `parent`. Used
// by instrumentation that reconstructs phases after the fact (the
// micro-batcher's per-request queue_wait/batch_form/forward). Feeds the
// chrome collector (when enabled) and the trace ring; no-op returning 0
// when `parent` is invalid. Returns the span's id. Passing a nonzero
// `span_id` (from TraceRing::NextSpanId) uses it instead of allocating;
// this lets callers pre-allocate an id, run nested work under
// ScopedTraceContext{trace_id, span_id}, and record the enclosing span
// afterwards with the children already pointing at it.
uint64_t RecordManualSpan(const char* name, TraceContext parent,
                          int64_t start_us, int64_t end_us,
                          uint64_t span_id = 0);

// RAII span. When `time_counter` is non-null the scope's duration is
// always added to it (in µs); the chrome trace event is only recorded
// while the global collector is enabled, and the span only joins a
// TraceRing trace when the thread's ambient TraceContext is valid (in
// which case the span also becomes the ambient parent for its scope).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Counter* time_counter = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Identity of this span while open ({0,0} when the span is not part
  // of a sampled trace). Lets instrumentation attach the id to
  // exemplars/headers without reaching back into thread-locals.
  TraceContext context() const { return TraceContext{trace_id_, span_id_}; }

 private:
  const char* name_;
  Counter* counter_;
  bool chrome_ = false;       // record into TraceCollector on close
  uint64_t trace_id_ = 0;     // nonzero => part of a ring trace
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  int64_t start_us_ = 0;
};

}  // namespace sgcl

#define SGCL_TRACE_CONCAT_IMPL_(a, b) a##b
#define SGCL_TRACE_CONCAT_(a, b) SGCL_TRACE_CONCAT_IMPL_(a, b)

// Trace-only span (no metrics counter).
#define SGCL_TRACE_SPAN(name)                                       \
  ::sgcl::TraceSpan SGCL_TRACE_CONCAT_(_sgcl_trace_span_, __LINE__)(name)

// Span that also accumulates wall time into counter "time/<name>_us" in
// the global metrics registry. `name` must be a string literal.
#define SGCL_TRACE_SPAN_TIMED(name)                                        \
  static ::sgcl::Counter* SGCL_TRACE_CONCAT_(_sgcl_span_counter_,          \
                                             __LINE__) =                   \
      ::sgcl::MetricsRegistry::Global().GetCounter("time/" name "_us");    \
  ::sgcl::TraceSpan SGCL_TRACE_CONCAT_(_sgcl_trace_span_, __LINE__)(       \
      name, SGCL_TRACE_CONCAT_(_sgcl_span_counter_, __LINE__))

#endif  // SGCL_COMMON_TRACE_H_
