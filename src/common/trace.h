// Scoped trace spans exported as chrome://tracing "trace event" JSON.
//
// Usage at an instrumentation site:
//   void Stage() {
//     SGCL_TRACE_SPAN("generator/encode_views");
//     ...
//   }
// or, to also accumulate the stage's wall time into a metrics counter
// (the "time/<stage>_us" convention consumed by SgclTrainer):
//   SGCL_TRACE_SPAN_TIMED("generator");   // counter "time/generator_us"
//
// Collection is off by default: a disabled span costs one relaxed atomic
// load and no clock reads (TIMED spans keep feeding their counter either
// way — metrics are always-on). Enable with
// TraceCollector::Global().Enable(true), then WriteChromeTrace() produces
// a file loadable by chrome://tracing / Perfetto.
//
// Span conventions: names are "<subsystem>/<what>" (stage-level, not
// per-node — spans inside tight loops belong at chunk granularity).
// Thread ids are small dense integers assigned in first-span order; tid 0
// is whichever thread traced first (normally the main thread).
#ifndef SGCL_COMMON_TRACE_H_
#define SGCL_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"

namespace sgcl {

// Process-wide sink for completed spans. Thread-safe.
class TraceCollector {
 public:
  struct Event {
    std::string name;
    int tid = 0;
    int64_t start_us = 0;  // relative to the collector's epoch
    int64_t dur_us = 0;
  };

  TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(Event event);
  void Clear();

  // Copy of all recorded events, ordered by (start_us, dur_us desc) so a
  // parent span sorts before the children it encloses.
  std::vector<Event> Events() const;

  // {"traceEvents":[...],"displayTimeUnit":"ms"} with one "ph":"X"
  // complete event per span.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  // Microseconds since the collector's epoch (steady clock).
  int64_t NowUs() const;
  // Dense id of the calling thread, assigned on first use.
  static int CurrentThreadId();

  static TraceCollector& Global();

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// RAII span. When `time_counter` is non-null the scope's duration is
// always added to it (in µs); the trace event itself is only recorded
// while the global collector is enabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, Counter* time_counter = nullptr)
      : name_(name), counter_(time_counter) {
    tracing_ = TraceCollector::Global().enabled();
    if (tracing_ || counter_ != nullptr) {
      start_us_ = TraceCollector::Global().NowUs();
    }
  }
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  Counter* counter_;
  bool tracing_ = false;
  int64_t start_us_ = 0;
};

}  // namespace sgcl

#define SGCL_TRACE_CONCAT_IMPL_(a, b) a##b
#define SGCL_TRACE_CONCAT_(a, b) SGCL_TRACE_CONCAT_IMPL_(a, b)

// Trace-only span (no metrics counter).
#define SGCL_TRACE_SPAN(name)                                       \
  ::sgcl::TraceSpan SGCL_TRACE_CONCAT_(_sgcl_trace_span_, __LINE__)(name)

// Span that also accumulates wall time into counter "time/<name>_us" in
// the global metrics registry. `name` must be a string literal.
#define SGCL_TRACE_SPAN_TIMED(name)                                        \
  static ::sgcl::Counter* SGCL_TRACE_CONCAT_(_sgcl_span_counter_,          \
                                             __LINE__) =                   \
      ::sgcl::MetricsRegistry::Global().GetCounter("time/" name "_us");    \
  ::sgcl::TraceSpan SGCL_TRACE_CONCAT_(_sgcl_trace_span_, __LINE__)(       \
      name, SGCL_TRACE_CONCAT_(_sgcl_span_counter_, __LINE__))

#endif  // SGCL_COMMON_TRACE_H_
