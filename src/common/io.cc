#include "common/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/fault.h"
#include "common/string_util.h"

namespace sgcl {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {}

void BinaryWriter::WriteU32(uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteI64(int64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteF32(float v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  // Empty vectors serialize as a zero count with no bytes; their
  // data() may be null, which ostream::write (and memcpy below) must
  // never see even with size 0.
  if (size == 0) return;
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteI64(static_cast<int64_t>(s.size()));
  WriteBytes(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteI64(static_cast<int64_t>(v.size()));
  WriteBytes(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteI32Vector(const std::vector<int32_t>& v) {
  WriteI64(static_cast<int64_t>(v.size()));
  WriteBytes(v.data(), v.size() * sizeof(int32_t));
}

Status BinaryWriter::Close() {
  out_.flush();
  if (!out_) {
    return Status::Internal(StrFormat("write to %s failed", path_.c_str()));
  }
  out_.close();
  return Status::OK();
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  ok_ = static_cast<bool>(in_);
  if (ok_) {
    in_.seekg(0, std::ios::end);
    file_size_ = static_cast<int64_t>(in_.tellg());
    in_.seekg(0, std::ios::beg);
  }
}

int64_t BinaryReader::RemainingBytes() {
  if (!ok_) return 0;
  const int64_t pos = static_cast<int64_t>(in_.tellg());
  return pos < 0 ? 0 : file_size_ - pos;
}

bool BinaryReader::ReadBytes(void* data, size_t size) {
  if (!ok_) return false;
  if (size == 0) return true;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!in_) {
    ok_ = false;
    eof_ = in_.eof();
    return false;
  }
  return true;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

int64_t BinaryReader::ReadI64() {
  int64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadF32() {
  float v = 0.0f;
  ReadBytes(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  const int64_t size = ReadI64();
  if (!ok_ || size < 0 || size > RemainingBytes()) {
    ok_ = false;
    return std::string();
  }
  std::string s(static_cast<size_t>(size), '\0');
  ReadBytes(s.data(), s.size());
  return s;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  const int64_t size = ReadI64();
  if (!ok_ || size < 0 ||
      size > RemainingBytes() / static_cast<int64_t>(sizeof(float))) {
    ok_ = false;
    return {};
  }
  std::vector<float> v(static_cast<size_t>(size));
  ReadBytes(v.data(), v.size() * sizeof(float));
  return v;
}

std::vector<int32_t> BinaryReader::ReadI32Vector() {
  const int64_t size = ReadI64();
  if (!ok_ || size < 0 ||
      size > RemainingBytes() / static_cast<int64_t>(sizeof(int32_t))) {
    ok_ = false;
    return {};
  }
  std::vector<int32_t> v(static_cast<size_t>(size));
  ReadBytes(v.data(), v.size() * sizeof(int32_t));
  return v;
}

Status BinaryReader::Finish() {
  if (!ok_) {
    return Status::InvalidArgument(
        StrFormat("truncated or unreadable file %s", path_.c_str()));
  }
  // Check for trailing bytes.
  in_.peek();
  if (!in_.eof()) {
    return Status::InvalidArgument(
        StrFormat("trailing bytes in %s", path_.c_str()));
  }
  return Status::OK();
}

void BufferWriter::WriteU32(uint32_t v) { WriteBytes(&v, sizeof(v)); }
void BufferWriter::WriteI64(int64_t v) { WriteBytes(&v, sizeof(v)); }
void BufferWriter::WriteF32(float v) { WriteBytes(&v, sizeof(v)); }
void BufferWriter::WriteF64(double v) { WriteBytes(&v, sizeof(v)); }
void BufferWriter::WriteU64(uint64_t v) { WriteBytes(&v, sizeof(v)); }

void BufferWriter::WriteBytes(const void* data, size_t size) {
  if (size == 0) return;
  buffer_.append(static_cast<const char*>(data), size);
}

void BufferWriter::WriteString(const std::string& s) {
  WriteI64(static_cast<int64_t>(s.size()));
  WriteBytes(s.data(), s.size());
}

void BufferWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteI64(static_cast<int64_t>(v.size()));
  WriteBytes(v.data(), v.size() * sizeof(float));
}

void BufferWriter::WriteI32Vector(const std::vector<int32_t>& v) {
  WriteI64(static_cast<int64_t>(v.size()));
  WriteBytes(v.data(), v.size() * sizeof(int32_t));
}

void BufferWriter::WriteI64Vector(const std::vector<int64_t>& v) {
  WriteI64(static_cast<int64_t>(v.size()));
  WriteBytes(v.data(), v.size() * sizeof(int64_t));
}

bool BufferReader::ReadBytes(void* data, size_t size) {
  if (!ok_ || size > bytes_.size() - pos_) {
    ok_ = false;
    return false;
  }
  if (size > 0) std::memcpy(data, bytes_.data() + pos_, size);
  pos_ += size;
  return true;
}

uint32_t BufferReader::ReadU32() {
  uint32_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

int64_t BufferReader::ReadI64() {
  int64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

float BufferReader::ReadF32() {
  float v = 0.0f;
  ReadBytes(&v, sizeof(v));
  return v;
}

double BufferReader::ReadF64() {
  double v = 0.0;
  ReadBytes(&v, sizeof(v));
  return v;
}

uint64_t BufferReader::ReadU64() {
  uint64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

std::string BufferReader::ReadString() {
  const int64_t size = ReadI64();
  if (!ok_ || size < 0 || static_cast<size_t>(size) > remaining()) {
    ok_ = false;
    return std::string();
  }
  return ReadRaw(static_cast<size_t>(size));
}

std::vector<float> BufferReader::ReadFloatVector() {
  const int64_t size = ReadI64();
  if (!ok_ || size < 0 ||
      static_cast<size_t>(size) > remaining() / sizeof(float)) {
    ok_ = false;
    return {};
  }
  std::vector<float> v(static_cast<size_t>(size));
  ReadBytes(v.data(), v.size() * sizeof(float));
  return v;
}

std::vector<int32_t> BufferReader::ReadI32Vector() {
  const int64_t size = ReadI64();
  if (!ok_ || size < 0 ||
      static_cast<size_t>(size) > remaining() / sizeof(int32_t)) {
    ok_ = false;
    return {};
  }
  std::vector<int32_t> v(static_cast<size_t>(size));
  ReadBytes(v.data(), v.size() * sizeof(int32_t));
  return v;
}

std::vector<int64_t> BufferReader::ReadI64Vector() {
  const int64_t size = ReadI64();
  if (!ok_ || size < 0 ||
      static_cast<size_t>(size) > remaining() / sizeof(int64_t)) {
    ok_ = false;
    return {};
  }
  std::vector<int64_t> v(static_cast<size_t>(size));
  ReadBytes(v.data(), v.size() * sizeof(int64_t));
  return v;
}

std::string BufferReader::ReadRaw(size_t size) {
  if (!ok_ || size > remaining()) {
    ok_ = false;
    return std::string();
  }
  std::string s(bytes_.data() + pos_, size);
  pos_ += size;
  return s;
}

Status BufferReader::Finish(const std::string& what) const {
  if (!ok_) {
    return Status::InvalidArgument(
        StrFormat("truncated or corrupt %s", what.c_str()));
  }
  if (pos_ != bytes_.size()) {
    return Status::InvalidArgument(
        StrFormat("trailing bytes in %s", what.c_str()));
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal(StrFormat("read of %s failed", path.c_str()));
  }
  return buf.str();
}

namespace {

// Closes `fd` on scope exit unless released (after a successful explicit
// close). Keeps every early-return in AtomicWriteFile leak-free.
struct FdGuard {
  explicit FdGuard(int fd) : fd(fd) {}
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
  int Release() {
    const int f = fd;
    fd = -1;
    return f;
  }
  int fd;
};

// The directory part of `path` ("." when it has none), for fsyncing the
// parent so the rename itself is durable.
std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const std::string& data) {
  FaultInjector& faults = FaultInjector::Global();
  const std::string tmp_path = path + ".tmp";

  if (auto fault = faults.Check("io/open_tmp"); fault.has_value()) {
    if (*fault == FaultKind::kCrash) return SimulatedCrash("io/open_tmp");
    return Status::Internal(
        StrFormat("injected open failure for %s", tmp_path.c_str()));
  }
  const int raw_fd =
      ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (raw_fd < 0) {
    return Status::Internal(StrFormat("cannot open %s for writing: %s",
                                      tmp_path.c_str(),
                                      std::strerror(errno)));
  }
  FdGuard fd(raw_fd);

  size_t write_size = data.size();
  bool short_write = false;
  if (auto fault = faults.Check("io/write"); fault.has_value()) {
    switch (*fault) {
      case FaultKind::kCrash:
        // Simulated death mid-write: half the payload reaches the temp
        // file (best effort), nothing is cleaned up.
        (void)::write(fd.fd, data.data(), write_size / 2);
        return SimulatedCrash("io/write");
      case FaultKind::kShortWrite:
        write_size /= 2;
        short_write = true;
        break;
      case FaultKind::kError:
        (void)::unlink(tmp_path.c_str());
        return Status::Internal(
            StrFormat("injected EIO writing %s", tmp_path.c_str()));
    }
  }
  size_t written = 0;
  while (written < write_size) {
    const ssize_t n =
        ::write(fd.fd, data.data() + written, write_size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::Internal(StrFormat(
          "write to %s failed: %s", tmp_path.c_str(), std::strerror(errno)));
      (void)::unlink(tmp_path.c_str());
      return st;
    }
    written += static_cast<size_t>(n);
  }
  if (short_write) {
    // The torn prefix stays on disk under the temp name (as a real torn
    // write would); the final path is never touched.
    return Status::Internal(StrFormat(
        "injected short write: %zu of %zu bytes reached %s", write_size,
        data.size(), tmp_path.c_str()));
  }

  if (auto fault = faults.Check("io/fsync"); fault.has_value()) {
    if (*fault == FaultKind::kCrash) return SimulatedCrash("io/fsync");
    (void)::unlink(tmp_path.c_str());
    return Status::Internal(
        StrFormat("injected fsync failure for %s", tmp_path.c_str()));
  }
  if (::fsync(fd.fd) != 0) {
    const Status st = Status::Internal(StrFormat(
        "fsync of %s failed: %s", tmp_path.c_str(), std::strerror(errno)));
    (void)::unlink(tmp_path.c_str());
    return st;
  }
  if (::close(fd.Release()) != 0) {
    const Status st = Status::Internal(StrFormat(
        "close of %s failed: %s", tmp_path.c_str(), std::strerror(errno)));
    (void)::unlink(tmp_path.c_str());
    return st;
  }

  if (auto fault = faults.Check("io/rename"); fault.has_value()) {
    if (*fault == FaultKind::kCrash) return SimulatedCrash("io/rename");
    (void)::unlink(tmp_path.c_str());
    return Status::Internal(StrFormat("injected rename failure %s -> %s",
                                      tmp_path.c_str(), path.c_str()));
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const Status st = Status::Internal(
        StrFormat("rename %s -> %s failed: %s", tmp_path.c_str(),
                  path.c_str(), std::strerror(errno)));
    (void)::unlink(tmp_path.c_str());
    return st;
  }

  // Make the rename durable: fsync the parent directory. A failure here
  // is reported (the caller may retry) but the file is already complete
  // and visible.
  if (auto fault = faults.Check("io/fsync_dir"); fault.has_value()) {
    if (*fault == FaultKind::kCrash) return SimulatedCrash("io/fsync_dir");
    return Status::Internal(StrFormat("injected directory fsync failure for %s",
                                      path.c_str()));
  }
  const std::string dir = ParentDir(path);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    const int rc = ::fsync(dir_fd);
    ::close(dir_fd);
    if (rc != 0) {
      return Status::Internal(StrFormat("fsync of directory %s failed: %s",
                                        dir.c_str(), std::strerror(errno)));
    }
  }
  return Status::OK();
}

}  // namespace sgcl
