#include "common/io.h"

#include "common/string_util.h"

namespace sgcl {

BinaryWriter::BinaryWriter(const std::string& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {}

void BinaryWriter::WriteU32(uint32_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteI64(int64_t v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteF32(float v) {
  out_.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void BinaryWriter::WriteBytes(const void* data, size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
}

void BinaryWriter::WriteString(const std::string& s) {
  WriteI64(static_cast<int64_t>(s.size()));
  WriteBytes(s.data(), s.size());
}

void BinaryWriter::WriteFloatVector(const std::vector<float>& v) {
  WriteI64(static_cast<int64_t>(v.size()));
  WriteBytes(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteI32Vector(const std::vector<int32_t>& v) {
  WriteI64(static_cast<int64_t>(v.size()));
  WriteBytes(v.data(), v.size() * sizeof(int32_t));
}

Status BinaryWriter::Close() {
  out_.flush();
  if (!out_) {
    return Status::Internal(StrFormat("write to %s failed", path_.c_str()));
  }
  out_.close();
  return Status::OK();
}

BinaryReader::BinaryReader(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  ok_ = static_cast<bool>(in_);
  if (ok_) {
    in_.seekg(0, std::ios::end);
    file_size_ = static_cast<int64_t>(in_.tellg());
    in_.seekg(0, std::ios::beg);
  }
}

int64_t BinaryReader::RemainingBytes() {
  if (!ok_) return 0;
  const int64_t pos = static_cast<int64_t>(in_.tellg());
  return pos < 0 ? 0 : file_size_ - pos;
}

bool BinaryReader::ReadBytes(void* data, size_t size) {
  if (!ok_) return false;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!in_) {
    ok_ = false;
    eof_ = in_.eof();
    return false;
  }
  return true;
}

uint32_t BinaryReader::ReadU32() {
  uint32_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

int64_t BinaryReader::ReadI64() {
  int64_t v = 0;
  ReadBytes(&v, sizeof(v));
  return v;
}

float BinaryReader::ReadF32() {
  float v = 0.0f;
  ReadBytes(&v, sizeof(v));
  return v;
}

std::string BinaryReader::ReadString() {
  const int64_t size = ReadI64();
  if (!ok_ || size < 0 || size > RemainingBytes()) {
    ok_ = false;
    return std::string();
  }
  std::string s(static_cast<size_t>(size), '\0');
  ReadBytes(s.data(), s.size());
  return s;
}

std::vector<float> BinaryReader::ReadFloatVector() {
  const int64_t size = ReadI64();
  if (!ok_ || size < 0 ||
      size > RemainingBytes() / static_cast<int64_t>(sizeof(float))) {
    ok_ = false;
    return {};
  }
  std::vector<float> v(static_cast<size_t>(size));
  ReadBytes(v.data(), v.size() * sizeof(float));
  return v;
}

std::vector<int32_t> BinaryReader::ReadI32Vector() {
  const int64_t size = ReadI64();
  if (!ok_ || size < 0 ||
      size > RemainingBytes() / static_cast<int64_t>(sizeof(int32_t))) {
    ok_ = false;
    return {};
  }
  std::vector<int32_t> v(static_cast<size_t>(size));
  ReadBytes(v.data(), v.size() * sizeof(int32_t));
  return v;
}

Status BinaryReader::Finish() {
  if (!ok_) {
    return Status::InvalidArgument(
        StrFormat("truncated or unreadable file %s", path_.c_str()));
  }
  // Check for trailing bytes.
  in_.peek();
  if (!in_.eof()) {
    return Status::InvalidArgument(
        StrFormat("trailing bytes in %s", path_.c_str()));
  }
  return Status::OK();
}

}  // namespace sgcl
