#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <vector>

#include "common/metrics.h"
#include "common/trace.h"

namespace sgcl {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

// Sink registry and run id share one mutex; log volume is low enough
// (stage/epoch granularity, never per-node) that a lock per record is
// fine.
std::mutex& SinkMutex() {
  // Intentionally leaked: usable during static destruction.
  static std::mutex* mu = new std::mutex();  // NOLINT(sgcl-R5)
  return *mu;
}

std::vector<LogSink*>& Sinks() {
  // NOLINTNEXTLINE(sgcl-R5): intentionally leaked singleton
  static std::vector<LogSink*>* sinks = new std::vector<LogSink*>();
  return *sinks;
}

std::string& RunIdStorage() {
  static std::string* id = new std::string();  // NOLINT(sgcl-R5): leaked singleton
  return *id;
}

// Trims a path down to its basename for compact log lines.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

const char* LogLevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarning:
      return "warning";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

void SetRunId(const std::string& run_id) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  RunIdStorage() = run_id;
}

std::string GetRunId() {
  std::lock_guard<std::mutex> lock(SinkMutex());
  return RunIdStorage();
}

void AddLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  Sinks().push_back(sink);
}

void RemoveLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  auto& sinks = Sinks();
  for (auto it = sinks.begin(); it != sinks.end(); ++it) {
    if (*it == sink) {
      sinks.erase(it);
      return;
    }
  }
}

Result<std::unique_ptr<JsonlLogSink>> JsonlLogSink::Open(
    const std::string& path) {
  std::ofstream out(path, std::ios::app);
  if (!out) {
    return Status::InvalidArgument("cannot open log file for append: " +
                                   path);
  }
  return std::unique_ptr<JsonlLogSink>(
      // NOLINTNEXTLINE(sgcl-R5): private ctor, make_unique cannot reach it
      new JsonlLogSink(std::move(out), path));
}

JsonlLogSink::JsonlLogSink(std::ofstream out, std::string path)
    : out_(std::move(out)), path_(std::move(path)) {}

JsonlLogSink::~JsonlLogSink() = default;

void JsonlLogSink::Write(const LogRecord& record) {
  std::string line = "{\"run_id\":\"" + JsonEscape(record.run_id) + "\"";
  line += ",\"t_mono_us\":" + std::to_string(record.mono_us);
  line += ",\"t_wall_ms\":" + std::to_string(record.wall_ms);
  line += ",\"tid\":" + std::to_string(record.tid);
  line += std::string(",\"level\":\"") + LogLevelName(record.level) + "\"";
  line += ",\"src\":\"" + JsonEscape(Basename(record.file)) + ":" +
          std::to_string(record.line) + "\"";
  line += ",\"msg\":\"" + JsonEscape(record.message) + "\"}";
  std::lock_guard<std::mutex> lock(mu_);
  out_ << line << '\n';
  out_.flush();  // logs must survive a crash; volume is low
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_level.load(std::memory_order_relaxed)) {
    return;
  }
  LogRecord record;
  record.level = level_;
  record.file = file_;
  record.line = line_;
  record.tid = TraceCollector::CurrentThreadId();
  record.mono_us = TraceCollector::Global().NowUs();
  record.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
  record.message = stream_.str();

  std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelLetter(level_),
               Basename(file_), line_, record.message.c_str());

  // One acquisition covers the run id read and the sink fan-out; sink
  // Write implementations must therefore never log or touch the sink
  // registry themselves.
  std::lock_guard<std::mutex> lock(SinkMutex());
  record.run_id = RunIdStorage();
  for (LogSink* sink : Sinks()) sink->Write(record);
}

}  // namespace internal
}  // namespace sgcl
