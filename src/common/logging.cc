#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace sgcl {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Trims a path down to its basename for compact log lines.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_level.load(std::memory_order_relaxed)) {
    return;
  }
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace internal
}  // namespace sgcl
