#include "common/parallel.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>

#include "common/check.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace sgcl {
namespace {

thread_local bool t_in_pool_worker = false;

// Runtime telemetry (see metrics.h). Task counts are plain counters;
// queue wait (submit -> dequeue latency) is a histogram whose buckets
// cover "pool keeping up" (tens of µs) through "pool saturated" (ms+).
Counter* TasksCounter() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("parallel/tasks");
  return c;
}

Counter* InlineRunsCounter() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("parallel/inline_runs");
  return c;
}

Counter* ParallelForCounter() {
  static Counter* const c =
      MetricsRegistry::Global().GetCounter("parallel/parallel_fors");
  return c;
}

Histogram* QueueWaitHistogram() {
  static Histogram* const h = MetricsRegistry::Global().GetHistogram(
      "parallel/queue_wait_us",
      {10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 20000.0, 100000.0});
  return h;
}

int HardwareThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int DefaultThreadCount() {
  const char* env = std::getenv("SGCL_NUM_THREADS");
  if (env == nullptr) return HardwareThreadCount();
  const Result<int> parsed = ParseThreadCount(env);
  if (!parsed.ok()) {
    const int fallback = HardwareThreadCount();
    SGCL_LOG(WARNING) << "ignoring SGCL_NUM_THREADS=\"" << env
                      << "\": " << parsed.status().message() << "; using "
                      << fallback << " hardware thread(s)";
    return fallback;
  }
  return *parsed;
}

std::mutex& GlobalPoolMutex() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

Result<int> ParseThreadCount(const std::string& value) {
  if (value.empty()) {
    return Status::InvalidArgument("thread count is empty");
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    return Status::InvalidArgument("thread count is not an integer");
  }
  if (errno == ERANGE || parsed > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("thread count overflows int");
  }
  if (parsed <= 0) {
    return Status::InvalidArgument("thread count must be positive");
  }
  return static_cast<int>(parsed);
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  TasksCounter()->Increment();
  const auto enqueued = std::chrono::steady_clock::now();
  auto timed_task = [task = std::move(task), enqueued] {
    QueueWaitHistogram()->Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - enqueued)
            .count()));
    task();
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    SGCL_CHECK(!stop_);
    tasks_.push(std::move(timed_task));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  auto& pool = GlobalPoolSlot();
  if (!pool) pool = std::make_unique<ThreadPool>(DefaultThreadCount());
  return *pool;
}

int ParallelRuntimeThreads() { return GlobalThreadPool().size(); }

void SetParallelThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(GlobalPoolMutex());
  auto& pool = GlobalPoolSlot();
  pool.reset();  // joins old workers before the new pool spins up
  pool = std::make_unique<ThreadPool>(
      num_threads > 0 ? num_threads : DefaultThreadCount());
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t range = end - begin;
  if (range <= grain || ThreadPool::InWorkerThread()) {
    InlineRunsCounter()->Increment();
    fn(begin, end);
    return;
  }
  ThreadPool& pool = GlobalThreadPool();
  if (pool.size() <= 1) {
    InlineRunsCounter()->Increment();
    fn(begin, end);
    return;
  }
  ParallelForCounter()->Increment();
  int64_t num_chunks =
      std::min<int64_t>(pool.size(), (range + grain - 1) / grain);
  const int64_t chunk = (range + num_chunks - 1) / num_chunks;
  num_chunks = (range + chunk - 1) / chunk;

  struct State {
    std::mutex mu;
    std::condition_variable cv;
    int64_t pending;
    std::exception_ptr error;
  } state;
  state.pending = num_chunks - 1;

  for (int64_t c = 1; c < num_chunks; ++c) {
    const int64_t lo = begin + c * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    pool.Submit([&state, &fn, lo, hi] {
      std::exception_ptr err;
      try {
        fn(lo, hi);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state.mu);
      if (err && !state.error) state.error = err;
      if (--state.pending == 0) state.cv.notify_one();
    });
  }
  // The calling thread owns the first chunk.
  std::exception_ptr caller_err;
  try {
    fn(begin, begin + chunk);
  } catch (...) {
    caller_err = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&state] { return state.pending == 0; });
  if (caller_err && !state.error) state.error = caller_err;
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace sgcl
