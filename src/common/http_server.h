// Minimal dependency-free blocking HTTP/1.1 server (POSIX sockets) for
// the live telemetry endpoint.
//
// Design constraints, in order:
//  1. Zero cost to the training loop. The server runs one accept thread;
//     handlers read process-wide state (metrics registry, trace
//     collector, RunStatusBoard) that the hot paths already publish via
//     relaxed atomics / short critical sections. Nothing in training
//     blocks on the server.
//  2. Boring and bounded. Requests are served one at a time on the
//     accept thread (concurrent clients queue in the listen backlog);
//     request size, header count, and per-socket recv time are capped so
//     a stuck client cannot wedge the endpoint for long.
//  3. Clean shutdown. Stop() wakes the accept loop deterministically and
//     joins the thread; the destructor stops too, so scoped usage is
//     leak-free.
//
// Scope: GET/HEAD only, exact-path dispatch, Connection: close on every
// response. This is a diagnostics endpoint, not a web framework — no TLS,
// no keep-alive, no chunked encoding. Bind is loopback-only by default.
#ifndef SGCL_COMMON_HTTP_SERVER_H_
#define SGCL_COMMON_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"

namespace sgcl {

struct HttpRequest {
  std::string method;  // "GET", "HEAD", ...
  std::string path;    // decoded-free target path, e.g. "/metrics"
  std::string query;   // raw query string without the '?', may be empty
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Handlers run on the server's accept thread and must be thread-safe
// with respect to whatever state they read.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers an exact-match handler for `path`. Must be called before
  // Start; later registrations replace earlier ones.
  void Handle(const std::string& path, HttpHandler handler);

  // Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, see
  // port()), starts the accept thread. InvalidArgument when already
  // running, Internal on socket errors (e.g. port in use).
  Status Start(int port);

  // Idempotent: wakes and joins the accept thread, closes the socket.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Actual bound port (valid after a successful Start).
  int port() const { return port_; }
  // Total requests answered, including 404s (test/diagnostic aid).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int client_fd);

  std::map<std::string, HttpHandler> handlers_;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> requests_served_{0};
  int listen_fd_ = -1;
  int port_ = 0;
};

}  // namespace sgcl

#endif  // SGCL_COMMON_HTTP_SERVER_H_
