// Minimal dependency-free blocking HTTP/1.1 server (POSIX sockets) for
// the live telemetry endpoint and the embedding inference service.
//
// Design constraints, in order:
//  1. Zero cost to the training loop. With the default options the
//     server runs one accept thread; handlers read process-wide state
//     (metrics registry, trace collector, RunStatusBoard) that the hot
//     paths already publish via relaxed atomics / short critical
//     sections. Nothing in training blocks on the server.
//  2. Boring and bounded. Request header size, body size, and
//     per-socket recv time are capped so a stuck client cannot wedge a
//     serving thread for long. With num_threads == 1, requests are
//     served one at a time on the accept thread (concurrent clients
//     queue in the listen backlog).
//  3. Clean shutdown. Stop() wakes the accept loop(s), shuts down every
//     active connection, and joins all threads deterministically; the
//     destructor stops too, so scoped usage is leak-free.
//
// Default scope matches the original diagnostics endpoint: GET/HEAD
// only, exact-path dispatch, Connection: close on every response. The
// serving stack (serve/service.*) opts into more via HttpServerOptions:
// keep-alive with an idle timeout, multiple serving threads, POST
// bodies framed by Content-Length, and JSON error bodies. Still no TLS
// and no chunked encoding; bind is loopback-only.
#ifndef SGCL_COMMON_HTTP_SERVER_H_
#define SGCL_COMMON_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"

namespace sgcl {

struct HttpRequest {
  std::string method;  // "GET", "HEAD", "POST", ...
  std::string path;    // decoded-free target path, e.g. "/metrics"
  std::string query;   // raw query string without the '?', may be empty
  std::string body;    // request body (Content-Length framed), may be empty
  // Header field names lowercased, values trimmed. Repeated headers keep
  // the last value (none of the headers we read legally repeat).
  std::map<std::string, std::string> headers;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  // Extra response headers, e.g. {"Retry-After", "1"}. Content-Type,
  // Content-Length, and Connection are emitted by the server.
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

// Handlers run on a server thread and must be thread-safe with respect
// to whatever state they read (with num_threads > 1 they also run
// concurrently with each other).
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  // Number of threads accepting and serving connections. 1 preserves
  // the original serialized diagnostics behavior.
  int num_threads = 1;
  // When true, HTTP/1.1 connections persist across requests until the
  // client sends "Connection: close", the idle timeout fires, or
  // max_requests_per_connection is reached.
  bool keep_alive = false;
  // Per-recv deadline; for keep-alive connections this is the idle
  // timeout between requests.
  int idle_timeout_ms = 5000;
  // Bodies larger than this are rejected with 413 (connection closed).
  size_t max_body_bytes = 1 << 20;
  // Keep-alive connections are closed after this many responses.
  int max_requests_per_connection = 100000;
  // When true, server-generated errors (400/404/405/408/413/431) carry
  // a JSON body: {"error":{"code":N,"message":"..."}}. Handler-produced
  // responses are never rewritten.
  bool json_errors = false;
};

class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers an exact-match GET/HEAD handler for `path`. Must be
  // called before Start; later registrations replace earlier ones.
  void Handle(const std::string& path, HttpHandler handler);

  // Registers a handler for an exact method + path pair ("POST",
  // "/v1/embed"). GET handlers also answer HEAD (body omitted). A
  // request for a known path with an unregistered method gets 405.
  void Handle(const std::string& method, const std::string& path,
              HttpHandler handler);

  // Registers a GET/HEAD handler for every path starting with `prefix`
  // ("/v1/traces/" matches "/v1/traces/<id>"). Exact-path handlers win;
  // among prefixes the longest match wins. The handler sees the full
  // request (including path) and parses the suffix itself.
  void HandlePrefix(const std::string& prefix, HttpHandler handler);

  // Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port, see
  // port()), starts the serving threads. InvalidArgument when already
  // running, Internal on socket errors (e.g. port in use).
  Status Start(int port);
  Status Start(int port, const HttpServerOptions& options);

  // Idempotent: wakes and joins all serving threads, shuts down active
  // connections, closes the listen socket.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // Actual bound port (valid after a successful Start).
  int port() const { return port_; }
  // Total requests answered, including 404s (test/diagnostic aid).
  int64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int client_fd);
  HttpResponse Dispatch(const HttpRequest& request) const;
  HttpResponse MakeError(int status, const std::string& message) const;

  std::map<std::string, std::map<std::string, HttpHandler>> handlers_;
  // Prefix-dispatched GET handlers, keyed by prefix; consulted only
  // when no exact path matches (longest prefix wins).
  std::map<std::string, HttpHandler> prefix_handlers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> requests_served_{0};
  HttpServerOptions options_;
  std::mutex conn_mu_;
  std::set<int> active_fds_ SGCL_GUARDED_BY(conn_mu_);
  int listen_fd_ = -1;
  int port_ = 0;
};

}  // namespace sgcl

#endif  // SGCL_COMMON_HTTP_SERVER_H_
