// Deterministic fault injection for crash-consistency testing.
//
// Production code threads named *injection points* through its failure-
// prone phases (file writes, fsync, rename, checkpoint phase boundaries)
// by calling FaultInjector::Global().Check("point/name"). When the
// injector is disarmed — the default, and the only state production runs
// ever see — Check is a single relaxed atomic load returning "no fault".
// Tests arm faults at specific points and hit counts (or via a seeded
// Bernoulli sweep) and then exercise the real error-handling paths
// in-tree instead of hoping the disk misbehaves on cue.
//
// Fault kinds:
//   kError      the operation reports failure (EIO-style Status) after
//               performing no further work at the point.
//   kShortWrite only for write points: the write persists a prefix of
//               the buffer, then reports failure (torn-write model).
//   kCrash      simulated process death: the operation abandons
//               everything mid-phase — no cleanup, no rollback, on-disk
//               state stays exactly as the "crash" left it — and a
//               sentinel Status unwinds to the test harness, which plays
//               the role of the restarted process.
//
// Determinism: nth-hit arming is exact by construction; ArmRandom draws
// from a common/rng Rng seeded by the caller, so a seed reproduces the
// same fault schedule bit-for-bit (lint rule sgcl-R2 keeps other entropy
// sources out of the tree).
//
// The catalog of injection points compiled into the library is listed in
// DESIGN.md §10.3; tests assert against those names.
#ifndef SGCL_COMMON_FAULT_H_
#define SGCL_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sgcl {

enum class FaultKind { kError, kShortWrite, kCrash };

const char* FaultKindToString(FaultKind kind);

// Builds the sentinel Status for a simulated crash at `point`.
// IsSimulatedCrash recognizes exactly these, so harnesses can tell
// "the process died here on purpose" apart from real failures.
Status SimulatedCrash(const std::string& point);
[[nodiscard]] bool IsSimulatedCrash(const Status& status);

class FaultInjector {
 public:
  // The process-wide injector every injection point consults.
  static FaultInjector& Global();

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Arms `kind` to fire on the `nth` (1-based) hit of `point`. Multiple
  // arms may coexist (different points, or different hits of one point);
  // each arm fires at most once.
  void Arm(const std::string& point, FaultKind kind, int64_t nth = 1);

  // Arms a seeded Bernoulli sweep: every Check at any point fires `kind`
  // with probability `p`, drawn from an Rng seeded with `seed`. The
  // schedule is a pure function of (seed, sequence of Check calls), so a
  // deterministic workload replays the same faults.
  void ArmRandom(double p, uint64_t seed, FaultKind kind = FaultKind::kError);

  // Disarms everything and zeroes hit counters. Leaves the injector in
  // the default (disabled) state.
  void Reset();

  // The fault to inject at `point` for this hit, or nullopt to proceed.
  // Counts the hit whenever any arming is active; free when disarmed.
  std::optional<FaultKind> Check(const std::string& point);

  // Hits observed at `point` since the last Reset while armed (0 when
  // never armed). Lets tests assert an injection point is actually on
  // the code path they think it is.
  int64_t hits(const std::string& point) const;

  // Every point name observed since the last Reset while armed, sorted.
  std::vector<std::string> SeenPoints() const;

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

 private:
  struct Arming {
    FaultKind kind;
    int64_t nth = 1;  // fire on this 1-based hit
    bool fired = false;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Arming>> arms_ SGCL_GUARDED_BY(mu_);
  std::map<std::string, int64_t> hit_counts_ SGCL_GUARDED_BY(mu_);
  // Bernoulli sweep state; active when random_p_ > 0.
  double random_p_ SGCL_GUARDED_BY(mu_) = 0.0;
  FaultKind random_kind_ SGCL_GUARDED_BY(mu_) = FaultKind::kError;
  std::optional<Rng> random_rng_ SGCL_GUARDED_BY(mu_);
};

// Test-scoped arming: Reset on construction and destruction, so a test
// can never leak an armed fault into the next one.
class ScopedFaultInjection {
 public:
  ScopedFaultInjection() { FaultInjector::Global().Reset(); }
  ~ScopedFaultInjection() { FaultInjector::Global().Reset(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace sgcl

#endif  // SGCL_COMMON_FAULT_H_
