#include "common/telemetry.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace sgcl {
namespace {

// Value of `key` in a raw query string ("a=1&b=2"); empty when absent.
// No %-decoding: every /v1/traces parameter is numeric.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return std::string();
}

int64_t QueryInt(const std::string& query, const std::string& key,
                 int64_t fallback) {
  const std::string v = QueryParam(query, key);
  if (v.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (errno != 0 || end == v.c_str() || *end != '\0') return fallback;
  return parsed;
}

}  // namespace

std::string GenerateRunId() {
  static std::atomic<int> counter{0};
  const auto wall = std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  return StrFormat("run-%08llx-%04x-%d",
                   static_cast<unsigned long long>(wall),
                   static_cast<unsigned>(getpid()) & 0xffff,
                   counter.fetch_add(1) + 1);
}

RunStatusBoard::RunStatusBoard()
    : start_(std::chrono::steady_clock::now()) {}

void RunStatusBoard::BeginRun(const std::string& command, int total_epochs) {
  std::lock_guard<std::mutex> lock(mu_);
  command_ = command;
  state_ = "running";
  completed_epochs_ = 0;
  total_epochs_ = total_epochs;
  last_epoch_seconds_ = 0.0;
  losses_.clear();
  stage_seconds_.clear();
  checkpoint_count_ = 0;
  last_checkpoint_path_.clear();
  checkpoint_seconds_ = 0.0;
  workers_.clear();
  start_ = std::chrono::steady_clock::now();
}

void RunStatusBoard::RecordEpoch(
    int epoch, int total_epochs, double loss, double seconds,
    const std::map<std::string, double>& stage_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  completed_epochs_ = epoch + 1;
  total_epochs_ = total_epochs;
  last_epoch_seconds_ = seconds;
  losses_.push_back(loss);
  for (const auto& [stage, secs] : stage_seconds) {
    stage_seconds_[stage] += secs;
  }
}

void RunStatusBoard::EndRun(bool ok) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = ok ? "done" : "failed";
}

void RunStatusBoard::RecordCheckpoint(const std::string& path,
                                      double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++checkpoint_count_;
  last_checkpoint_path_ = path;
  checkpoint_seconds_ += seconds;
}

void RunStatusBoard::RecordWorker(int rank, bool connected,
                                  int64_t last_round, int64_t leaves) {
  std::lock_guard<std::mutex> lock(mu_);
  WorkerRow& row = workers_[rank];
  row.connected = connected;
  row.last_round = last_round;
  row.leaves = leaves;
}

std::string RunStatusBoard::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  // The in-progress epoch is 1-based and clamps at total once finished.
  const int in_progress =
      state_ == "running" ? std::min(completed_epochs_ + 1, total_epochs_)
                          : completed_epochs_;
  std::string json = "{\"run_id\":\"" + JsonEscape(GetRunId()) + "\"";
  json += ",\"state\":\"" + JsonEscape(state_) + "\"";
  json += ",\"command\":\"" + JsonEscape(command_) + "\"";
  json += ",\"uptime_seconds\":" + JsonDouble(uptime);
  json += ",\"epoch\":" + std::to_string(in_progress);
  json += ",\"completed_epochs\":" + std::to_string(completed_epochs_);
  json += ",\"total_epochs\":" + std::to_string(total_epochs_);
  json += ",\"last_loss\":" +
          (losses_.empty() ? std::string("null") : JsonDouble(losses_.back()));
  json += ",\"last_epoch_seconds\":" + JsonDouble(last_epoch_seconds_);
  json += ",\"losses\":[";
  for (size_t i = 0; i < losses_.size(); ++i) {
    if (i > 0) json += ',';
    json += JsonDouble(losses_[i]);
  }
  json += "],\"stage_seconds\":{";
  bool first = true;
  for (const auto& [stage, secs] : stage_seconds_) {
    if (!first) json += ',';
    first = false;
    // Appended piecewise: GCC 12's -Wrestrict misfires on chained
    // std::string operator+ here (PR105329).
    json.append("\"").append(JsonEscape(stage)).append("\":");
    json.append(JsonDouble(secs));
  }
  json += "}";
  if (checkpoint_count_ > 0) {
    json += ",\"checkpoint\":{\"count\":" + std::to_string(checkpoint_count_);
    json.append(",\"last_path\":\"")
        .append(JsonEscape(last_checkpoint_path_))
        .append("\"");
    json += ",\"total_seconds\":" + JsonDouble(checkpoint_seconds_) + "}";
  }
  if (!workers_.empty()) {
    json += ",\"workers\":[";
    bool first_worker = true;
    for (const auto& [rank, row] : workers_) {
      if (!first_worker) json += ',';
      first_worker = false;
      json.append("{\"rank\":").append(std::to_string(rank));
      json.append(",\"connected\":").append(row.connected ? "true" : "false");
      json.append(",\"last_round\":").append(std::to_string(row.last_round));
      json.append(",\"leaves\":").append(std::to_string(row.leaves));
      json.append("}");
    }
    json += "]";
  }
  json += "}";
  return json;
}

void RegisterDiagnosticsHandlers(HttpServer* server,
                                 std::chrono::steady_clock::time_point start) {
  server->Handle("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = MetricsRegistry::Global().Snapshot().ToPrometheusText();
    return response;
  });
  server->Handle("/healthz", [start](const HttpRequest&) {
    const double uptime = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - start)
                              .count();
    HttpResponse response;
    response.content_type = "application/json";
    response.body = "{\"status\":\"ok\",\"version\":\"" +
                    std::string(kSgclVersion) + "\",\"run_id\":\"" +
                    JsonEscape(GetRunId()) + "\",\"uptime_seconds\":" +
                    JsonDouble(uptime) + ",\"pid\":" +
                    std::to_string(getpid()) + ",\"compiler\":\"" +
                    JsonEscape(__VERSION__) + "\"}";
    return response;
  });
  // Sampled trace ring: list (newest first, ?min_duration_us= &limit=
  // filters, ?detail=1 inlines flat span lists — the trace_report dump
  // format) and per-trace span trees at /v1/traces/<hex id>.
  server->Handle("/v1/traces", [](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "application/json";
    const int64_t min_duration_us =
        QueryInt(request.query, "min_duration_us", 0);
    const int64_t limit = QueryInt(request.query, "limit", 0);
    const bool detail = QueryInt(request.query, "detail", 0) != 0;
    response.body = TraceRing::Global().ListJson(
        min_duration_us, static_cast<int>(limit), detail);
    return response;
  });
  server->HandlePrefix("/v1/traces/", [](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "application/json";
    const std::string id_text =
        request.path.substr(std::string("/v1/traces/").size());
    const uint64_t trace_id = ParseTraceId(id_text);
    std::string tree =
        trace_id == 0 ? std::string() : TraceRing::Global().TreeJson(trace_id);
    if (tree.empty()) {
      response.status = 404;
      response.body = StrFormat(
          "{\"error\":{\"code\":404,\"message\":\"unknown trace %s\"}}",
          JsonEscape(id_text).c_str());
      return response;
    }
    response.body = std::move(tree);
    return response;
  });
}

TelemetryServer::~TelemetryServer() { Stop(); }

Status TelemetryServer::Start(int port, const RunStatusBoard* board) {
  start_ = std::chrono::steady_clock::now();
  RegisterDiagnosticsHandlers(&server_, start_);
  server_.Handle("/status", [board](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    if (board == nullptr) {
      response.body = "{\"state\":\"idle\"}";
    } else {
      response.body = board->ToJson();
    }
    return response;
  });
  server_.Handle("/trace", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = TraceCollector::Global().ToChromeTraceJson();
    return response;
  });
  SGCL_RETURN_NOT_OK(server_.Start(port));
  SGCL_LOG(INFO) << "telemetry listening on http://127.0.0.1:"
                 << server_.port()
                 << " (/metrics /healthz /status /trace /v1/traces)";
  return Status::OK();
}

void TelemetryServer::Stop() { server_.Stop(); }

}  // namespace sgcl
