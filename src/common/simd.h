// Runtime ISA dispatch for numeric hot loops.
//
// The build targets baseline x86-64 so binaries stay portable, but a few
// dense kernels (nn/gin_inference.cc, the Lipschitz displacement
// reduction) gain 2-4x from AVX2/AVX-512 FMA. SGCL_TARGET_CLONES
// compiles the annotated function once per listed ISA level and installs
// an ifunc resolver that picks the best clone for the running CPU at
// load time.
//
// noinline matters: without it GCC can inline the baseline clone into
// the caller and skip the ifunc dispatch entirely.
//
// Disabled under ThreadSanitizer/AddressSanitizer: their runtimes are
// not initialized yet when the dynamic loader runs ifunc resolvers, so
// instrumented binaries with target_clones crash before main().
#ifndef SGCL_COMMON_SIMD_H_
#define SGCL_COMMON_SIMD_H_

#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_THREAD__) &&         \
    !defined(__SANITIZE_ADDRESS__)
#define SGCL_TARGET_CLONES                                                    \
  __attribute__((noinline, target_clones("arch=x86-64-v4", "arch=x86-64-v3", \
                                         "default")))
#else
#define SGCL_TARGET_CLONES
#endif

#endif  // SGCL_COMMON_SIMD_H_
