// Small binary-file IO helpers used by checkpoint and dataset
// serialization. All multi-byte values are little-endian (the library
// does not target big-endian hosts).
#ifndef SGCL_COMMON_IO_H_
#define SGCL_COMMON_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace sgcl {

class BinaryWriter {
 public:
  // Opens `path` for writing; check ok() before use.
  explicit BinaryWriter(const std::string& path);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  void WriteU32(uint32_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteBytes(const void* data, size_t size);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteI32Vector(const std::vector<int32_t>& v);

  // Flushes and reports the final status.
  Status Close();

 private:
  std::ofstream out_;
  std::string path_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  [[nodiscard]] bool ok() const { return ok_; }
  // True once a read ran past the end of the file (ok() turns false too).
  [[nodiscard]] bool eof() const { return eof_; }

  uint32_t ReadU32();
  int64_t ReadI64();
  float ReadF32();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<int32_t> ReadI32Vector();

  // InvalidArgument when any read failed or trailing bytes remain.
  Status Finish();

 private:
  bool ReadBytes(void* data, size_t size);
  // Bytes left between the read cursor and end-of-file.
  int64_t RemainingBytes();

  std::ifstream in_;
  std::string path_;
  int64_t file_size_ = 0;
  bool ok_ = false;
  bool eof_ = false;
};

}  // namespace sgcl

#endif  // SGCL_COMMON_IO_H_
