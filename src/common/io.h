// Small binary IO helpers used by checkpoint and dataset serialization.
// All multi-byte values are little-endian (the library does not target
// big-endian hosts).
//
// Two families:
//  * BinaryWriter/BinaryReader stream straight to/from a file — fine for
//    bulk data (datasets) where a torn write only loses that file.
//  * BufferWriter/BufferReader work on an in-memory byte string, paired
//    with AtomicWriteFile / ReadFileToString for crash-safe artifacts
//    (checkpoints): serialize fully in memory, then publish the bytes
//    with temp-file -> fsync -> rename so a reader never observes a
//    partial file under the final name.
#ifndef SGCL_COMMON_IO_H_
#define SGCL_COMMON_IO_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace sgcl {

class BinaryWriter {
 public:
  // Opens `path` for writing; check ok() before use.
  explicit BinaryWriter(const std::string& path);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  void WriteU32(uint32_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteBytes(const void* data, size_t size);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteI32Vector(const std::vector<int32_t>& v);

  // Flushes and reports the final status.
  Status Close();

 private:
  std::ofstream out_;
  std::string path_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  [[nodiscard]] bool ok() const { return ok_; }
  // True once a read ran past the end of the file (ok() turns false too).
  [[nodiscard]] bool eof() const { return eof_; }

  uint32_t ReadU32();
  int64_t ReadI64();
  float ReadF32();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<int32_t> ReadI32Vector();

  // InvalidArgument when any read failed or trailing bytes remain.
  Status Finish();

 private:
  bool ReadBytes(void* data, size_t size);
  // Bytes left between the read cursor and end-of-file.
  int64_t RemainingBytes();

  std::ifstream in_;
  std::string path_;
  int64_t file_size_ = 0;
  bool ok_ = false;
  bool eof_ = false;
};

// In-memory binary serializer with the BinaryWriter value vocabulary.
// Cannot fail: the product is bytes(), which callers persist via
// AtomicWriteFile (checkpoints) or embed in a larger stream.
class BufferWriter {
 public:
  void WriteU32(uint32_t v);
  void WriteI64(int64_t v);
  void WriteF32(float v);
  void WriteF64(double v);
  void WriteU64(uint64_t v);
  void WriteBytes(const void* data, size_t size);
  void WriteString(const std::string& s);
  void WriteFloatVector(const std::vector<float>& v);
  void WriteI32Vector(const std::vector<int32_t>& v);
  void WriteI64Vector(const std::vector<int64_t>& v);

  const std::string& bytes() const { return buffer_; }
  std::string TakeBytes() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

// Bounds-checked reader over a byte string. Any out-of-range read turns
// ok() false and returns a zero value; callers check ok() (or Finish,
// which also rejects trailing bytes) before trusting results.
class BufferReader {
 public:
  explicit BufferReader(const std::string& bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const { return ok_; }
  size_t position() const { return pos_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  uint32_t ReadU32();
  int64_t ReadI64();
  float ReadF32();
  double ReadF64();
  uint64_t ReadU64();
  std::string ReadString();
  std::vector<float> ReadFloatVector();
  std::vector<int32_t> ReadI32Vector();
  std::vector<int64_t> ReadI64Vector();
  // Raw `size` bytes as a string (empty + !ok() when out of range).
  std::string ReadRaw(size_t size);

  // InvalidArgument when any read failed or trailing bytes remain;
  // `what` names the artifact in the message.
  Status Finish(const std::string& what) const;

 private:
  bool ReadBytes(void* data, size_t size);

  const std::string& bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Reads an entire file. NotFound when it cannot be opened.
Result<std::string> ReadFileToString(const std::string& path);

// Crash-safe whole-file publish: writes `data` to `path + ".tmp"`,
// fsyncs, renames over `path`, and fsyncs the parent directory, so
// after a crash at any step `path` holds either the previous complete
// content or the new complete content — never a mix. Consults the
// fault injector (common/fault.h) at points "io/open_tmp", "io/write",
// "io/fsync", "io/rename", and "io/fsync_dir"; a kCrash fault abandons
// the temp file exactly where the "process died".
Status AtomicWriteFile(const std::string& path, const std::string& data);

}  // namespace sgcl

#endif  // SGCL_COMMON_IO_H_
