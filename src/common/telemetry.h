// Live telemetry facade: one HttpServer wired to the process-wide
// observability state, so a training/bench run can be scraped while it
// is running instead of only inspected post-hoc via --metrics-out.
//
// Endpoints (all GET, loopback only):
//   /metrics  Prometheus text exposition of the global MetricsRegistry
//             (text/plain; version=0.0.4).
//   /healthz  JSON liveness: status, uptime, run id, version, build info.
//   /status   JSON live run progress from the RunStatusBoard (state,
//             in-progress epoch, last losses, per-stage seconds).
//   /trace    Current chrome://tracing dump of the global TraceCollector
//             (empty traceEvents when collection is disabled).
//   /v1/traces       Sampled trace ring summaries, newest first
//                    (?min_duration_us=, ?limit=, ?detail=1 for spans).
//   /v1/traces/<id>  Span tree for one sampled trace (16-hex-digit id).
//
// Correlation: every export is stamped with the process run id
// (logging's SetRunId/GetRunId), the same id the JSONL log sink writes,
// so logs, metrics, status, and traces join on one key.
#ifndef SGCL_COMMON_TELEMETRY_H_
#define SGCL_COMMON_TELEMETRY_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/http_server.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace sgcl {

// Semantic version reported by /healthz.
inline constexpr const char* kSgclVersion = "0.4.0";

// Process-unique correlation id: wall-clock seconds, pid, and a process
// counter, e.g. "run-68b2c1a4-1f3a-1".
std::string GenerateRunId();

// Thread-safe live view of the current run, published by the trainer's
// on_epoch_end observer (wired in the CLI) and read by /status. Writers
// take a short mutex per epoch — far off any hot path.
class RunStatusBoard {
 public:
  RunStatusBoard();

  // Marks a run in progress (state "running") and resets epoch state.
  void BeginRun(const std::string& command, int total_epochs);
  // Publishes a completed epoch; /status then shows epoch `epoch + 1`
  // of `total` as in progress until the next call or EndRun.
  void RecordEpoch(int epoch, int total_epochs, double loss, double seconds,
                   const std::map<std::string, double>& stage_seconds);
  // Final state: "done" or "failed".
  void EndRun(bool ok);
  // Publishes a completed checkpoint save (wired to
  // PretrainOptions::on_checkpoint); /status then reports the latest
  // checkpoint path, count, and cumulative save seconds.
  void RecordCheckpoint(const std::string& path, double seconds);
  // Publishes one distributed worker's live row (wired to the all-reduce
  // coordinator in rank 0's process): connection state, the last round
  // it submitted a leaf for (-1 before the first), and its cumulative
  // leaf count. /status renders these as a "workers" array.
  void RecordWorker(int rank, bool connected, int64_t last_round,
                    int64_t leaves);

  // One JSON object: run_id, state, command, uptime_seconds,
  // completed_epochs, epoch (in progress, 1-based), total_epochs,
  // last_loss, last_epoch_seconds, losses (per completed epoch),
  // cumulative stage_seconds, checkpoint {count, last_path,
  // total_seconds} when any checkpoint was saved, and workers
  // [{rank, connected, last_round, leaves}] when distributed.
  std::string ToJson() const;

 private:
  mutable std::mutex mu_;
  std::string command_ SGCL_GUARDED_BY(mu_);
  std::string state_ SGCL_GUARDED_BY(mu_) = "idle";
  int completed_epochs_ SGCL_GUARDED_BY(mu_) = 0;
  int total_epochs_ SGCL_GUARDED_BY(mu_) = 0;
  double last_epoch_seconds_ SGCL_GUARDED_BY(mu_) = 0.0;
  std::vector<double> losses_ SGCL_GUARDED_BY(mu_);
  std::map<std::string, double> stage_seconds_ SGCL_GUARDED_BY(mu_);
  int checkpoint_count_ SGCL_GUARDED_BY(mu_) = 0;
  std::string last_checkpoint_path_ SGCL_GUARDED_BY(mu_);
  double checkpoint_seconds_ SGCL_GUARDED_BY(mu_) = 0.0;
  struct WorkerRow {
    bool connected = false;
    int64_t last_round = -1;
    int64_t leaves = 0;
  };
  std::map<int, WorkerRow> workers_ SGCL_GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point start_;
};

// Registers the shared diagnostics handlers — GET /metrics (Prometheus
// text of the global registry), GET /healthz (JSON liveness stamped
// with run id/version/uptime), and the GET /v1/traces[/<id>] views of
// the global TraceRing — on any HttpServer. Used by both the
// telemetry endpoint and the inference service (serve/service.*) so
// every HTTP surface in the process is scrapable the same way. `start`
// anchors the reported uptime.
void RegisterDiagnosticsHandlers(HttpServer* server,
                                 std::chrono::steady_clock::time_point start);

// Owns the HTTP server plus the endpoint handlers. Scoped: Stop() (or
// destruction) joins the server thread.
class TelemetryServer {
 public:
  TelemetryServer() = default;
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  // Starts serving on 127.0.0.1:`port` (0 = ephemeral; see port()).
  // `board` may be null, in which case /status reports state "idle";
  // when non-null it must outlive the server.
  Status Start(int port, const RunStatusBoard* board);
  void Stop();

  int port() const { return server_.port(); }
  bool running() const { return server_.running(); }
  int64_t requests_served() const { return server_.requests_served(); }

 private:
  HttpServer server_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sgcl

#endif  // SGCL_COMMON_TELEMETRY_H_
