// Graph Convolutional Network layer (Kipf & Welling, ICLR'17):
//   H' = D̂^{-1/2} (A + I) D̂^{-1/2} X W + b,  D̂ = deg(A + I).
#ifndef SGCL_NN_GCN_CONV_H_
#define SGCL_NN_GCN_CONV_H_

#include <memory>

#include "common/rng.h"
#include "nn/graph_conv.h"
#include "nn/linear.h"

namespace sgcl {

class GcnConv : public GraphConv {
 public:
  GcnConv(int64_t in_dim, int64_t out_dim, Rng* rng);

  Tensor Forward(const Tensor& x, const GraphBatch& batch) const override;
  std::vector<Tensor> Parameters() const override;

 private:
  std::unique_ptr<Linear> linear_;
};

}  // namespace sgcl

#endif  // SGCL_NN_GCN_CONV_H_
