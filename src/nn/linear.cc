#include "nn/linear.h"

#include "tensor/init.h"
#include "tensor/ops.h"

namespace sgcl {

Linear::Linear(int64_t in_dim, int64_t out_dim, Rng* rng, bool use_bias)
    : weight_(XavierUniform(in_dim, out_dim, rng)), use_bias_(use_bias) {
  if (use_bias_) bias_ = ZerosParam(1, out_dim);
}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor y = MatMul(x, weight_);
  if (use_bias_) y = Add(y, bias_);
  return y;
}

std::vector<Tensor> Linear::Parameters() const {
  if (use_bias_) return {weight_, bias_};
  return {weight_};
}

}  // namespace sgcl
