// Model checkpointing: saves/loads the trainable tensors of any Module
// (encoders, heads, or whole SGCL models via their Parameters() list).
//
// Two on-disk formats share the magic 0x5347434c ("SGCL"):
//
//   v1 (legacy, read-only): magic, version, tensor count, then per tensor
//   its shape and float32 payload. Still loadable for backward compat.
//
//   v2 (current): magic, version, section count, then per section
//   {u32 id, i64 payload size, payload, u32 CRC32 of payload}. Sections
//   are independently integrity-checked, so corruption is reported with
//   the section that broke instead of a generic parse failure. Model-only
//   checkpoints written by SaveCheckpoint carry a single kModel section;
//   full training checkpoints (core/train_state.h) add config, optimizer,
//   RNG, and cursor sections to the same container.
//
// All loads are all-or-nothing: the target module is only mutated after
// the entire file has been parsed and every shape validated.
#ifndef SGCL_NN_CHECKPOINT_H_
#define SGCL_NN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/module.h"

namespace sgcl {

// Section ids used inside the v2 container. Values are part of the
// on-disk format; never renumber.
enum class CheckpointSectionId : uint32_t {
  kConfig = 1,     // SgclConfig fingerprint + training hyperparameters
  kModel = 2,      // module parameter tensors
  kOptimizer = 3,  // Adam step counter and moments
  kRng = 4,        // RNG stream states
  kCursor = 5,     // epoch/step cursors, epoch order, loss history
};

struct CheckpointSection {
  uint32_t id = 0;
  std::string payload;
};

// Builds the v2 container bytes (magic/version/count + CRC-guarded
// sections) from `sections`, preserving their order.
std::string SerializeCheckpointV2(const std::vector<CheckpointSection>& sections);

// Parses a v2 container. Fails with InvalidArgument (mentioning `what`
// and the offending section) on bad magic/version, truncation anywhere,
// CRC mismatch, or trailing bytes. Never partially succeeds.
Result<std::vector<CheckpointSection>> ParseCheckpointV2(
    const std::string& bytes, const std::string& what);

// Returns the payload of the first section with `id`, or NotFound.
Result<std::string> FindCheckpointSection(
    const std::vector<CheckpointSection>& sections, CheckpointSectionId id,
    const std::string& what);

// Serializes `module`'s parameters (count, then per tensor shape + f32
// payload) into a byte string suitable for a kModel section.
std::string SerializeModuleParams(const Module& module);

// Parses `bytes` (as produced by SerializeModuleParams) and applies the
// tensors to `module`. Validates the tensor count and every shape before
// touching the module: on any error the module is unchanged.
Status ApplyModuleParams(const std::string& bytes, Module* module,
                         const std::string& what);

// Writes `module`'s parameters to `path` as a v2 single-section
// checkpoint, atomically (temp file + fsync + rename).
Status SaveCheckpoint(const Module& module, const std::string& path);

// Restores parameters saved by SaveCheckpoint into `module`. Reads both
// the v1 and v2 formats. Fails with NotFound when the file is missing
// and InvalidArgument on magic/version/count/shape mismatch or
// corruption; the module is never partially updated.
Status LoadCheckpoint(const std::string& path, Module* module);

}  // namespace sgcl

#endif  // SGCL_NN_CHECKPOINT_H_
