// Model checkpointing: saves/loads the trainable tensors of any Module
// (encoders, heads, or whole SGCL models via their Parameters() list).
//
// Format: magic, version, tensor count, then per tensor its shape and
// float32 payload. Loading checks shape agreement pairwise, so the target
// module must be constructed with the same architecture.
#ifndef SGCL_NN_CHECKPOINT_H_
#define SGCL_NN_CHECKPOINT_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace sgcl {

// Writes `module`'s parameters to `path`.
Status SaveCheckpoint(const Module& module, const std::string& path);

// Restores parameters saved by SaveCheckpoint into `module`. Fails with
// InvalidArgument on magic/version/count/shape mismatch (module is left
// partially updated only on shape mismatch mid-file; callers treat any
// failure as fatal for the model instance).
Status LoadCheckpoint(const std::string& path, Module* module);

}  // namespace sgcl

#endif  // SGCL_NN_CHECKPOINT_H_
