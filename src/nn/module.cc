#include "nn/module.h"

namespace sgcl {

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const Tensor& p : Parameters()) total += p.numel();
  return total;
}

void Module::CopyParametersFrom(const Module& other) {
  std::vector<Tensor> dst = Parameters();
  std::vector<Tensor> src = other.Parameters();
  SGCL_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    SGCL_CHECK(dst[i].shape() == src[i].shape());
    dst[i].impl()->data = src[i].impl()->data;
  }
}

std::vector<Tensor> ConcatParameters(
    std::initializer_list<const Module*> modules) {
  std::vector<Tensor> all;
  for (const Module* m : modules) {
    SGCL_CHECK(m != nullptr);
    std::vector<Tensor> params = m->Parameters();
    all.insert(all.end(), params.begin(), params.end());
  }
  return all;
}

}  // namespace sgcl
