#include "nn/pooling.h"

#include "tensor/graph_ops.h"

namespace sgcl {

const char* PoolingKindToString(PoolingKind kind) {
  switch (kind) {
    case PoolingKind::kSum:
      return "sum";
    case PoolingKind::kMean:
      return "mean";
    case PoolingKind::kMax:
      return "max";
  }
  return "unknown";
}

Tensor Pool(const Tensor& x, const GraphBatch& batch, PoolingKind kind) {
  SGCL_CHECK_EQ(x.rows(), batch.num_nodes);
  switch (kind) {
    case PoolingKind::kSum:
      return SegmentSum(x, batch.node_graph_ids, batch.num_graphs);
    case PoolingKind::kMean:
      return SegmentMean(x, batch.node_graph_ids, batch.num_graphs);
    case PoolingKind::kMax:
      return SegmentMax(x, batch.node_graph_ids, batch.num_graphs);
  }
  SGCL_CHECK(false);
  return Tensor();
}

}  // namespace sgcl
