// Abstract message-passing layer over a batched edge list.
#ifndef SGCL_NN_GRAPH_CONV_H_
#define SGCL_NN_GRAPH_CONV_H_

#include "graph/graph_batch.h"
#include "nn/module.h"

namespace sgcl {

class GraphConv : public Module {
 public:
  // x [batch.num_nodes, in_dim] -> [batch.num_nodes, out_dim]. The layer
  // reads only topology (edge lists, degrees) from `batch`; features come
  // from `x` so layers can be stacked and fed perturbed inputs.
  virtual Tensor Forward(const Tensor& x, const GraphBatch& batch) const = 0;
};

}  // namespace sgcl

#endif  // SGCL_NN_GRAPH_CONV_H_
