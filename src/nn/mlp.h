// Multi-layer perceptron with ReLU between layers.
#ifndef SGCL_NN_MLP_H_
#define SGCL_NN_MLP_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace sgcl {

class Mlp : public Module {
 public:
  // dims = {in, h1, ..., out}; needs at least 2 entries. ReLU is applied
  // after every layer except the last (and after the last too when
  // `final_activation`).
  Mlp(const std::vector<int64_t>& dims, Rng* rng,
      bool final_activation = false);

  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

  int64_t in_dim() const { return layers_.front()->in_dim(); }
  int64_t out_dim() const { return layers_.back()->out_dim(); }
  size_t num_layers() const { return layers_.size(); }
  const Linear& layer(size_t i) const { return *layers_[i]; }
  bool final_activation() const { return final_activation_; }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  bool final_activation_;
};

}  // namespace sgcl

#endif  // SGCL_NN_MLP_H_
