#include "nn/checkpoint.h"

#include <utility>

#include "common/crc32.h"
#include "common/io.h"
#include "common/string_util.h"

namespace sgcl {
namespace {

constexpr uint32_t kMagic = 0x5347434cu;  // "SGCL"
constexpr uint32_t kVersionV1 = 1;
constexpr uint32_t kVersionV2 = 2;

// Hard cap on section payloads (1 GiB) so a corrupt size field fails
// fast instead of attempting a huge allocation.
constexpr int64_t kMaxSectionBytes = int64_t{1} << 30;

const char* SectionName(uint32_t id) {
  switch (static_cast<CheckpointSectionId>(id)) {
    case CheckpointSectionId::kConfig:
      return "config";
    case CheckpointSectionId::kModel:
      return "model";
    case CheckpointSectionId::kOptimizer:
      return "optimizer";
    case CheckpointSectionId::kRng:
      return "rng";
    case CheckpointSectionId::kCursor:
      return "cursor";
  }
  return "unknown";
}

// Parses a SerializeModuleParams blob against the expected parameter
// shapes without touching the module. On success `out` holds one value
// vector per parameter, in order.
Status ParseModuleParams(const std::string& bytes,
                         const std::vector<Tensor>& params,
                         const std::string& what,
                         std::vector<std::vector<float>>* out) {
  BufferReader reader(bytes);
  const int64_t count = reader.ReadI64();
  if (!reader.ok() || count != static_cast<int64_t>(params.size())) {
    return Status::InvalidArgument(
        StrFormat("%s has %lld tensors, model expects %zu", what.c_str(),
                  static_cast<long long>(count), params.size()));
  }
  out->clear();
  out->reserve(params.size());
  for (size_t k = 0; k < params.size(); ++k) {
    const int64_t rank = reader.ReadI64();
    if (!reader.ok() || rank < 0 || rank > 8) {
      return Status::InvalidArgument(
          StrFormat("%s tensor %zu has a corrupt header", what.c_str(), k));
    }
    std::vector<int64_t> shape(static_cast<size_t>(rank));
    for (int64_t& d : shape) d = reader.ReadI64();
    if (!reader.ok() || shape != params[k].shape()) {
      return Status::InvalidArgument(StrFormat(
          "%s tensor %zu shape does not match model architecture",
          what.c_str(), k));
    }
    std::vector<float> values = reader.ReadFloatVector();
    if (!reader.ok() || values.size() != params[k].impl()->data.size()) {
      return Status::InvalidArgument(
          StrFormat("%s tensor %zu has a corrupt payload", what.c_str(), k));
    }
    out->push_back(std::move(values));
  }
  return reader.Finish(what);
}

}  // namespace

std::string SerializeCheckpointV2(
    const std::vector<CheckpointSection>& sections) {
  BufferWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersionV2);
  writer.WriteU32(static_cast<uint32_t>(sections.size()));
  for (const CheckpointSection& section : sections) {
    writer.WriteU32(section.id);
    writer.WriteI64(static_cast<int64_t>(section.payload.size()));
    writer.WriteBytes(section.payload.data(), section.payload.size());
    writer.WriteU32(Crc32(section.payload));
  }
  return writer.TakeBytes();
}

Result<std::vector<CheckpointSection>> ParseCheckpointV2(
    const std::string& bytes, const std::string& what) {
  BufferReader reader(bytes);
  if (reader.ReadU32() != kMagic || !reader.ok()) {
    return Status::InvalidArgument(
        StrFormat("%s is not an SGCL checkpoint", what.c_str()));
  }
  const uint32_t version = reader.ReadU32();
  if (!reader.ok() || version != kVersionV2) {
    return Status::InvalidArgument(StrFormat(
        "%s has unsupported checkpoint version %u (expected %u)",
        what.c_str(), version, kVersionV2));
  }
  const uint32_t count = reader.ReadU32();
  if (!reader.ok()) {
    return Status::InvalidArgument(
        StrFormat("%s is truncated before the section table", what.c_str()));
  }
  std::vector<CheckpointSection> sections;
  sections.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    CheckpointSection section;
    section.id = reader.ReadU32();
    const int64_t size = reader.ReadI64();
    if (!reader.ok() || size < 0 || size > kMaxSectionBytes) {
      return Status::InvalidArgument(StrFormat(
          "%s section %u of %u has a corrupt header", what.c_str(), i + 1,
          count));
    }
    section.payload = reader.ReadRaw(static_cast<size_t>(size));
    const uint32_t stored_crc = reader.ReadU32();
    if (!reader.ok()) {
      return Status::InvalidArgument(StrFormat(
          "%s is truncated inside the %s section (%u of %u)", what.c_str(),
          SectionName(section.id), i + 1, count));
    }
    const uint32_t actual_crc = Crc32(section.payload);
    if (stored_crc != actual_crc) {
      return Status::InvalidArgument(StrFormat(
          "%s %s section failed its CRC32 check (stored %08x, computed "
          "%08x)",
          what.c_str(), SectionName(section.id), stored_crc, actual_crc));
    }
    sections.push_back(std::move(section));
  }
  SGCL_RETURN_NOT_OK(reader.Finish(what));
  return sections;
}

Result<std::string> FindCheckpointSection(
    const std::vector<CheckpointSection>& sections, CheckpointSectionId id,
    const std::string& what) {
  for (const CheckpointSection& section : sections) {
    if (section.id == static_cast<uint32_t>(id)) return section.payload;
  }
  return Status::NotFound(StrFormat("%s has no %s section", what.c_str(),
                                    SectionName(static_cast<uint32_t>(id))));
}

std::string SerializeModuleParams(const Module& module) {
  BufferWriter writer;
  const std::vector<Tensor> params = module.Parameters();
  writer.WriteI64(static_cast<int64_t>(params.size()));
  for (const Tensor& p : params) {
    writer.WriteI64(static_cast<int64_t>(p.shape().size()));
    for (int64_t d : p.shape()) writer.WriteI64(d);
    writer.WriteFloatVector(p.values());
  }
  return writer.TakeBytes();
}

Status ApplyModuleParams(const std::string& bytes, Module* module,
                         const std::string& what) {
  SGCL_CHECK(module != nullptr);
  std::vector<Tensor> params = module->Parameters();
  std::vector<std::vector<float>> values;
  SGCL_RETURN_NOT_OK(ParseModuleParams(bytes, params, what, &values));
  for (size_t k = 0; k < params.size(); ++k) {
    params[k].impl()->data = std::move(values[k]);
  }
  return Status::OK();
}

Status SaveCheckpoint(const Module& module, const std::string& path) {
  std::vector<CheckpointSection> sections;
  sections.push_back(
      {static_cast<uint32_t>(CheckpointSectionId::kModel),
       SerializeModuleParams(module)});
  return AtomicWriteFile(path, SerializeCheckpointV2(sections));
}

namespace {

// v1 files: magic, version, then the tensor blob in the same layout
// SerializeModuleParams uses today. Reuse the staged parser so v1 loads
// are also all-or-nothing.
Status LoadCheckpointV1(const std::string& bytes, const std::string& path,
                        Module* module) {
  // Strip the 8-byte header (already validated by the caller).
  return ApplyModuleParams(bytes.substr(2 * sizeof(uint32_t)), module, path);
}

}  // namespace

Status LoadCheckpoint(const std::string& path, Module* module) {
  SGCL_CHECK(module != nullptr);
  SGCL_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  BufferReader header(bytes);
  if (header.ReadU32() != kMagic || !header.ok()) {
    return Status::InvalidArgument(
        StrFormat("%s is not an SGCL checkpoint", path.c_str()));
  }
  const uint32_t version = header.ReadU32();
  if (!header.ok()) {
    return Status::InvalidArgument(
        StrFormat("%s is truncated after the magic", path.c_str()));
  }
  if (version == kVersionV1) {
    return LoadCheckpointV1(bytes, path, module);
  }
  if (version != kVersionV2) {
    return Status::InvalidArgument(StrFormat(
        "%s has unsupported checkpoint version %u", path.c_str(), version));
  }
  SGCL_ASSIGN_OR_RETURN(const std::vector<CheckpointSection> sections,
                        ParseCheckpointV2(bytes, path));
  SGCL_ASSIGN_OR_RETURN(
      const std::string model_bytes,
      FindCheckpointSection(sections, CheckpointSectionId::kModel, path));
  return ApplyModuleParams(model_bytes, module, path);
}

}  // namespace sgcl
