#include "nn/checkpoint.h"

#include "common/io.h"
#include "common/string_util.h"

namespace sgcl {
namespace {

constexpr uint32_t kMagic = 0x5347434cu;  // "SGCL"
constexpr uint32_t kVersion = 1;

}  // namespace

Status SaveCheckpoint(const Module& module, const std::string& path) {
  BinaryWriter writer(path);
  if (!writer.ok()) {
    return Status::InvalidArgument(
        StrFormat("cannot open %s for writing", path.c_str()));
  }
  const std::vector<Tensor> params = module.Parameters();
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);
  writer.WriteI64(static_cast<int64_t>(params.size()));
  for (const Tensor& p : params) {
    writer.WriteI64(static_cast<int64_t>(p.shape().size()));
    for (int64_t d : p.shape()) writer.WriteI64(d);
    writer.WriteFloatVector(p.values());
  }
  return writer.Close();
}

Status LoadCheckpoint(const std::string& path, Module* module) {
  SGCL_CHECK(module != nullptr);
  BinaryReader reader(path);
  if (!reader.ok()) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  if (reader.ReadU32() != kMagic) {
    return Status::InvalidArgument(
        StrFormat("%s is not an SGCL checkpoint", path.c_str()));
  }
  const uint32_t version = reader.ReadU32();
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported checkpoint version %u", version));
  }
  std::vector<Tensor> params = module->Parameters();
  const int64_t count = reader.ReadI64();
  if (count != static_cast<int64_t>(params.size())) {
    return Status::InvalidArgument(
        StrFormat("checkpoint has %lld tensors, model expects %zu",
                  static_cast<long long>(count), params.size()));
  }
  for (Tensor& p : params) {
    const int64_t rank = reader.ReadI64();
    if (!reader.ok() || rank < 0 || rank > 8) {
      return Status::InvalidArgument("corrupt tensor header");
    }
    std::vector<int64_t> shape(static_cast<size_t>(rank));
    for (int64_t& d : shape) d = reader.ReadI64();
    if (shape != p.shape()) {
      return Status::InvalidArgument(
          "checkpoint tensor shape does not match model architecture");
    }
    std::vector<float> values = reader.ReadFloatVector();
    if (!reader.ok() ||
        values.size() != p.impl()->data.size()) {
      return Status::InvalidArgument("corrupt tensor payload");
    }
    p.impl()->data = std::move(values);
  }
  return reader.Finish();
}

}  // namespace sgcl
