// Graph Attention Network layer (Veličković et al., ICLR'18).
//
// For each head: e_ij = LeakyReLU(a_src · Wh_i + a_dst · Wh_j) over the
// self-loop-augmented edge set, alpha = softmax_j(e_ij), and
// h_i' = sum_j alpha_ij Wh_j. Multi-head outputs are averaged (the "final
// layer" convention), keeping the output dimension equal to out_dim.
#ifndef SGCL_NN_GAT_CONV_H_
#define SGCL_NN_GAT_CONV_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/graph_conv.h"
#include "nn/linear.h"

namespace sgcl {

class GatConv : public GraphConv {
 public:
  GatConv(int64_t in_dim, int64_t out_dim, Rng* rng, int num_heads = 1,
          float negative_slope = 0.2f);

  Tensor Forward(const Tensor& x, const GraphBatch& batch) const override;
  std::vector<Tensor> Parameters() const override;

 private:
  struct Head {
    std::unique_ptr<Linear> w;      // [in, out], no bias
    Tensor attn_src;                // [out, 1]
    Tensor attn_dst;                // [out, 1]
  };
  std::vector<Head> heads_;
  Tensor bias_;  // [1, out]
  float negative_slope_;
};

}  // namespace sgcl

#endif  // SGCL_NN_GAT_CONV_H_
