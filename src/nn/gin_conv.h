// Graph Isomorphism Network layer (Xu et al., ICLR'19), GIN-0 variant:
//   h_i' = MLP((1 + eps) h_i + sum_{j in N(i)} h_j),   eps = 0.
#ifndef SGCL_NN_GIN_CONV_H_
#define SGCL_NN_GIN_CONV_H_

#include <memory>

#include "common/rng.h"
#include "nn/graph_conv.h"
#include "nn/mlp.h"

namespace sgcl {

class GinConv : public GraphConv {
 public:
  GinConv(int64_t in_dim, int64_t out_dim, Rng* rng, float eps = 0.0f);

  Tensor Forward(const Tensor& x, const GraphBatch& batch) const override;
  std::vector<Tensor> Parameters() const override;

  const Mlp& mlp() const { return *mlp_; }
  float eps() const { return eps_; }

 private:
  std::unique_ptr<Mlp> mlp_;  // {in, out, out}
  float eps_;
};

}  // namespace sgcl

#endif  // SGCL_NN_GIN_CONV_H_
