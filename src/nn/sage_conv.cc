#include "nn/sage_conv.h"

#include "tensor/graph_ops.h"
#include "tensor/ops.h"

namespace sgcl {

SageConv::SageConv(int64_t in_dim, int64_t out_dim, Rng* rng)
    : self_linear_(std::make_unique<Linear>(in_dim, out_dim, rng)),
      neigh_linear_(
          std::make_unique<Linear>(in_dim, out_dim, rng, /*use_bias=*/false)) {}

Tensor SageConv::Forward(const Tensor& x, const GraphBatch& batch) const {
  SGCL_CHECK_EQ(x.rows(), batch.num_nodes);
  Tensor self_term = self_linear_->Forward(x);
  if (batch.edge_src.empty()) return self_term;
  Tensor neighbor_sum = ScatterAddRows(GatherRows(x, batch.edge_src),
                                       batch.edge_dst, batch.num_nodes);
  // Mean over neighbors; isolated nodes keep a zero neighbor term.
  std::vector<int64_t> deg = batch.Degrees();
  std::vector<float> inv_deg(static_cast<size_t>(batch.num_nodes));
  for (int64_t v = 0; v < batch.num_nodes; ++v) {
    inv_deg[v] = deg[v] > 0 ? 1.0f / static_cast<float>(deg[v]) : 0.0f;
  }
  Tensor neighbor_mean = MulBroadcastCol(
      neighbor_sum,
      Tensor::FromVector({batch.num_nodes, 1}, std::move(inv_deg)));
  return Add(self_term, neigh_linear_->Forward(neighbor_mean));
}

std::vector<Tensor> SageConv::Parameters() const {
  std::vector<Tensor> params = self_linear_->Parameters();
  auto np = neigh_linear_->Parameters();
  params.insert(params.end(), np.begin(), np.end());
  return params;
}

}  // namespace sgcl
