#include "nn/gat_conv.h"

#include "tensor/graph_ops.h"
#include "tensor/init.h"
#include "tensor/ops.h"

namespace sgcl {

GatConv::GatConv(int64_t in_dim, int64_t out_dim, Rng* rng, int num_heads,
                 float negative_slope)
    : bias_(ZerosParam(1, out_dim)), negative_slope_(negative_slope) {
  SGCL_CHECK_GT(num_heads, 0);
  heads_.reserve(num_heads);
  for (int h = 0; h < num_heads; ++h) {
    Head head;
    head.w = std::make_unique<Linear>(in_dim, out_dim, rng, /*use_bias=*/false);
    head.attn_src = XavierUniform(out_dim, 1, rng);
    head.attn_dst = XavierUniform(out_dim, 1, rng);
    heads_.push_back(std::move(head));
  }
}

Tensor GatConv::Forward(const Tensor& x, const GraphBatch& batch) const {
  SGCL_CHECK_EQ(x.rows(), batch.num_nodes);
  // Self-loop-augmented edge set so every node attends to itself.
  std::vector<int32_t> src = batch.edge_src;
  std::vector<int32_t> dst = batch.edge_dst;
  src.reserve(src.size() + batch.num_nodes);
  dst.reserve(dst.size() + batch.num_nodes);
  for (int64_t v = 0; v < batch.num_nodes; ++v) {
    src.push_back(static_cast<int32_t>(v));
    dst.push_back(static_cast<int32_t>(v));
  }
  Tensor out;
  for (size_t h = 0; h < heads_.size(); ++h) {
    const Head& head = heads_[h];
    Tensor xw = head.w->Forward(x);                        // [N, out]
    Tensor score_src = MatMul(xw, head.attn_src);          // [N, 1]
    Tensor score_dst = MatMul(xw, head.attn_dst);          // [N, 1]
    Tensor edge_score = LeakyRelu(
        Add(GatherRows(score_src, src), GatherRows(score_dst, dst)),
        negative_slope_);                                  // [E+N, 1]
    Tensor alpha = SegmentSoftmax(edge_score, dst, batch.num_nodes);
    Tensor messages = MulBroadcastCol(GatherRows(xw, src), alpha);
    Tensor head_out = ScatterAddRows(messages, dst, batch.num_nodes);
    out = (h == 0) ? head_out : Add(out, head_out);
  }
  if (heads_.size() > 1) {
    out = MulScalar(out, 1.0f / static_cast<float>(heads_.size()));
  }
  return Add(out, bias_);
}

std::vector<Tensor> GatConv::Parameters() const {
  std::vector<Tensor> params;
  for (const Head& head : heads_) {
    params.push_back(head.w->weight());
    params.push_back(head.attn_src);
    params.push_back(head.attn_dst);
  }
  params.push_back(bias_);
  return params;
}

}  // namespace sgcl
