#include "nn/gin_inference.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/parallel.h"
#include "common/simd.h"
#include "nn/gin_conv.h"
#include "nn/layer_norm.h"

namespace sgcl {
namespace {

// Same sizing rule as the row-parallel kernels in tensor/ops.cc: chunks
// of at least ~64K flops so scheduling overhead stays negligible.
int64_t RowGrain(int64_t flops_per_row) {
  constexpr int64_t kMinFlopsPerChunk = 1 << 16;
  return std::max<int64_t>(1, kMinFlopsPerChunk /
                                  std::max<int64_t>(1, flops_per_row));
}

// One output row of a dense layer: y = a W + bias (optionally ReLU'd),
// register-tiled over the output dimension so accumulators stay out of
// memory. Per output element the accumulation is in ascending-k order.
// Unlike tensor/ops.cc MatMul there is no zero-input skip: ReLU inputs
// are ~half zeros at random positions, and the resulting branch
// mispredicts cost more than the vectorized multiplies they save
// (adding 0 * w is also bitwise-neutral, so results are unchanged).
inline void DenseRow(const float* a, int64_t in, const float* w,
                     const float* bias, int64_t out, bool relu, float* y) {
  for (int64_t j0 = 0; j0 < out; j0 += 32) {
    const int64_t blk = std::min<int64_t>(32, out - j0);
    float acc[32];
    for (int64_t t = 0; t < blk; ++t) acc[t] = 0.0f;
    for (int64_t k = 0; k < in; ++k) {
      const float av = a[k];
      const float* wrow = w + k * out + j0;
      for (int64_t t = 0; t < blk; ++t) acc[t] += av * wrow[t];
    }
    for (int64_t t = 0; t < blk; ++t) {
      const float v = acc[t] + bias[j0 + t];
      y[j0 + t] = relu && v <= 0.0f ? 0.0f : v;
    }
  }
}

// LayerNorm with double-precision moments as in nn/layer_norm.cc, then
// the encoder ReLU, in place on one row. Shared by the full-row and
// dirty-row kernels so their arithmetic can never diverge.
inline void LayerNormReluRow(const GinLayerParams& p, float* yrow) {
  double mean = 0.0;
  for (int64_t j = 0; j < p.out; ++j) mean += yrow[j];
  mean /= static_cast<double>(p.out);
  double var = 0.0;
  for (int64_t j = 0; j < p.out; ++j) {
    const double c = yrow[j] - mean;
    var += c * c;
  }
  var /= static_cast<double>(p.out);
  const float inv = 1.0f / std::sqrt(static_cast<float>(var) + p.ln_eps);
  for (int64_t j = 0; j < p.out; ++j) {
    const float h = (yrow[j] - static_cast<float>(mean)) * inv;
    const float y = p.gamma[j] * h + p.beta[j];
    yrow[j] = y > 0.0f ? y : 0.0f;
  }
}

// Rows [lo, hi) of one GIN layer: neighbor-sum aggregation (in-edge CSR,
// edge order), the two MLP layers, optional LayerNorm, and the trailing
// encoder ReLU. Rowwise given the previous layer's activations, so rows
// partition freely across threads without changing any result.
SGCL_TARGET_CLONES
void GinLayerRowRange(const GinLayerParams& p, const float* in,
                      const int64_t* offsets, const int32_t* in_srcs,
                      float* agg, float* hid, float* dst, int64_t lo,
                      int64_t hi) {
  const float one_plus_eps = 1.0f + p.eps_self;
  for (int64_t v = lo; v < hi; ++v) {
    // agg_v = (1 + eps) x_v + sum of in-neighbors, neighbor terms first
    // and in edge order (mirrors GinConv::Forward).
    float* arow = agg + v * p.in;
    for (int64_t j = 0; j < p.in; ++j) arow[j] = 0.0f;
    for (int64_t t = offsets[v]; t < offsets[v + 1]; ++t) {
      const float* srow = in + in_srcs[t] * p.in;
      for (int64_t j = 0; j < p.in; ++j) arow[j] += srow[j];
    }
    const float* xrow = in + v * p.in;
    for (int64_t j = 0; j < p.in; ++j) {
      const float self = one_plus_eps * xrow[j];
      arow[j] = self + arow[j];
    }
    float* hrow = hid + v * p.hid;
    DenseRow(arow, p.in, p.w1, p.b1, p.hid, /*relu=*/true, hrow);
    float* yrow = dst + v * p.out;
    // Without LayerNorm the encoder ReLU lands directly on the conv
    // output, so it fuses into the second dense layer.
    DenseRow(hrow, p.hid, p.w2, p.b2, p.out, /*relu=*/p.gamma == nullptr,
             yrow);
    if (p.gamma != nullptr) LayerNormReluRow(p, yrow);
  }
}

// Recomputes the listed dirty rows of one GIN layer under masked view
// `masked`: identical arithmetic to GinLayerRowRange, but the view's
// edge deletions are applied on the fly (skip in-edges from `masked`;
// the masked row itself keeps no edges at all) instead of materializing
// a view edge list. `agg` and `hid` are single-row scratch.
SGCL_TARGET_CLONES
void GinDirtyRows(const GinLayerParams& p, const float* in,
                  const int64_t* offsets, const int32_t* in_srcs,
                  int64_t masked, const int32_t* dirty, int64_t num_dirty,
                  float* agg, float* hid, float* dst) {
  const float one_plus_eps = 1.0f + p.eps_self;
  for (int64_t t = 0; t < num_dirty; ++t) {
    const int64_t v = dirty[t];
    for (int64_t j = 0; j < p.in; ++j) agg[j] = 0.0f;
    if (v != masked) {
      for (int64_t e = offsets[v]; e < offsets[v + 1]; ++e) {
        if (in_srcs[e] == masked) continue;
        const float* srow = in + static_cast<int64_t>(in_srcs[e]) * p.in;
        for (int64_t j = 0; j < p.in; ++j) agg[j] += srow[j];
      }
    }
    const float* xrow = in + v * p.in;
    for (int64_t j = 0; j < p.in; ++j) {
      const float self = one_plus_eps * xrow[j];
      agg[j] = self + agg[j];
    }
    DenseRow(agg, p.in, p.w1, p.b1, p.hid, /*relu=*/true, hid);
    float* yrow = dst + v * p.out;
    DenseRow(hid, p.hid, p.w2, p.b2, p.out, /*relu=*/p.gamma == nullptr,
             yrow);
    if (p.gamma != nullptr) LayerNormReluRow(p, yrow);
  }
}

// In-neighbor CSR in ascending edge order, so each row's neighbor sum
// accumulates in exactly the order ScatterAddRows uses.
void BuildInEdgeCsr(int64_t n, const int32_t* edge_src,
                    const int32_t* edge_dst, int64_t num_edges,
                    std::vector<int64_t>* offsets,
                    std::vector<int32_t>* in_srcs) {
  offsets->assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t e = 0; e < num_edges; ++e) ++(*offsets)[edge_dst[e] + 1];
  for (int64_t v = 0; v < n; ++v) (*offsets)[v + 1] += (*offsets)[v];
  in_srcs->resize(static_cast<size_t>(num_edges));
  std::vector<int64_t> cursor(offsets->begin(), offsets->end() - 1);
  for (int64_t e = 0; e < num_edges; ++e) {
    (*in_srcs)[cursor[edge_dst[e]]++] = edge_src[e];
  }
}

int64_t MaxLayerDim(const std::vector<GinLayerParams>& layers) {
  int64_t max_dim = 0;
  for (const GinLayerParams& layer : layers) {
    max_dim = std::max({max_dim, layer.in, layer.hid, layer.out});
  }
  return max_dim;
}

}  // namespace

GinInferencePlan GinInferencePlan::Build(const GnnEncoder& encoder) {
  GinInferencePlan plan;
  const int num_layers = encoder.config().num_layers;
  for (int l = 0; l < num_layers; ++l) {
    const GinConv* gin = dynamic_cast<const GinConv*>(&encoder.conv(l));
    if (gin == nullptr) return GinInferencePlan();
    const Mlp& mlp = gin->mlp();
    if (mlp.num_layers() != 2 || mlp.final_activation()) {
      return GinInferencePlan();
    }
    const Linear& l1 = mlp.layer(0);
    const Linear& l2 = mlp.layer(1);
    if (!l1.use_bias() || !l2.use_bias()) return GinInferencePlan();
    GinLayerParams layer;
    layer.w1 = l1.weight().data();
    layer.b1 = l1.bias().data();
    layer.w2 = l2.weight().data();
    layer.b2 = l2.bias().data();
    layer.in = l1.in_dim();
    layer.hid = l1.out_dim();
    layer.out = l2.out_dim();
    layer.eps_self = gin->eps();
    const LayerNorm* norm = encoder.norm(l);
    layer.gamma = norm != nullptr ? norm->gamma().data() : nullptr;
    layer.beta = norm != nullptr ? norm->beta().data() : nullptr;
    layer.ln_eps = norm != nullptr ? norm->eps() : 0.0f;
    plan.layers_.push_back(layer);
  }
  return plan;
}

void GinInferencePlan::EncodeNodes(const float* x, int64_t n,
                                   const int32_t* edge_src,
                                   const int32_t* edge_dst, int64_t num_edges,
                                   float* out) const {
  SGCL_CHECK(valid());
  if (n == 0) return;
  std::vector<int64_t> offsets;
  std::vector<int32_t> in_srcs;
  BuildInEdgeCsr(n, edge_src, edge_dst, num_edges, &offsets, &in_srcs);
  const int64_t max_dim = MaxLayerDim(layers_);
  // Uninitialized scratch: every row is fully written before it is read.
  const size_t scratch = static_cast<size_t>(n * max_dim);
  auto buf_a = std::make_unique_for_overwrite<float[]>(scratch);
  auto buf_b = std::make_unique_for_overwrite<float[]>(scratch);
  auto agg = std::make_unique_for_overwrite<float[]>(scratch);
  auto hid = std::make_unique_for_overwrite<float[]>(scratch);
  const float* in = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    const GinLayerParams& layer = layers_[l];
    float* dst = (l + 1 == layers_.size())
                     ? out
                     : (l % 2 == 0 ? buf_a.get() : buf_b.get());
    ParallelFor(0, n, RowGrain(layer.in * layer.hid + layer.hid * layer.out),
                [&](int64_t lo, int64_t hi) {
                  GinLayerRowRange(layer, in, offsets.data(), in_srcs.data(),
                                   agg.get(), hid.get(), dst, lo, hi);
                });
    in = dst;
  }
}

void GinInferencePlan::EncodeBatch(const GraphBatch& batch, float* out) const {
  EncodeNodes(batch.features.data(), batch.num_nodes, batch.edge_src.data(),
              batch.edge_dst.data(), static_cast<int64_t>(batch.edge_src.size()),
              out);
}

GinMaskedViewKernel::GinMaskedViewKernel(const GinInferencePlan& plan,
                                         const float* x, int64_t n,
                                         const int32_t* edge_src,
                                         const int32_t* edge_dst,
                                         int64_t num_edges)
    : plan_(&plan), x_(x), n_(n) {
  SGCL_CHECK(plan.valid());
  BuildInEdgeCsr(n, edge_src, edge_dst, num_edges, &in_offsets_, &in_srcs_);
  // Undirected neighbor CSR for the BFS balls. Self-loops and parallel
  // edges duplicate entries, which the BFS visited check tolerates.
  adj_offsets_.assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t e = 0; e < num_edges; ++e) {
    ++adj_offsets_[edge_src[e] + 1];
    ++adj_offsets_[edge_dst[e] + 1];
  }
  for (int64_t v = 0; v < n; ++v) adj_offsets_[v + 1] += adj_offsets_[v];
  adj_.resize(static_cast<size_t>(adj_offsets_[n]));
  {
    std::vector<int64_t> cursor(adj_offsets_.begin(), adj_offsets_.end() - 1);
    for (int64_t e = 0; e < num_edges; ++e) {
      adj_[cursor[edge_src[e]]++] = edge_dst[e];
      adj_[cursor[edge_dst[e]]++] = edge_src[e];
    }
  }
  // Base encode, keeping every layer's activations for reuse as the
  // clean rows of each masked view.
  const std::vector<GinLayerParams>& layers = plan.layers();
  layer_acts_.resize(layers.size());
  const size_t scratch = static_cast<size_t>(n * MaxLayerDim(layers));
  auto agg = std::make_unique_for_overwrite<float[]>(scratch);
  auto hid = std::make_unique_for_overwrite<float[]>(scratch);
  const float* in = x;
  for (size_t l = 0; l < layers.size(); ++l) {
    const GinLayerParams& layer = layers[l];
    layer_acts_[l].resize(static_cast<size_t>(n * layer.out));
    float* dst = layer_acts_[l].data();
    ParallelFor(0, n, RowGrain(layer.in * layer.hid + layer.hid * layer.out),
                [&](int64_t lo, int64_t hi) {
                  GinLayerRowRange(layer, in, in_offsets_.data(),
                                   in_srcs_.data(), agg.get(), hid.get(), dst,
                                   lo, hi);
                });
    in = dst;
  }
}

void GinMaskedViewKernel::ViewDisplacementsSq(int64_t begin, int64_t end,
                                              double* out) const {
  const std::vector<GinLayerParams>& layers = plan_->layers();
  const int64_t L = static_cast<int64_t>(layers.size());
  const int64_t f = layers[0].in;
  const int64_t d = layers.back().out;
  // Working copies of the features and base activations. Each view edits
  // only its dirty ball and restores those rows afterwards, so the full
  // copies are paid once per call and amortize over [begin, end).
  std::vector<std::vector<float>> bufs(static_cast<size_t>(L) + 1);
  bufs[0].assign(x_, x_ + n_ * f);
  for (int64_t l = 0; l < L; ++l) bufs[l + 1] = layer_acts_[l];
  std::vector<float> agg(static_cast<size_t>(MaxLayerDim(layers)));
  std::vector<float> hid(agg.size());
  std::vector<uint8_t> dist(static_cast<size_t>(n_), 0xFF);
  std::vector<int32_t> ball, sorted;
  std::vector<int64_t> level_end(static_cast<size_t>(L) + 1);
  for (int64_t r = begin; r < end; ++r) {
    // L-level BFS ball around r on the base graph: a node's layer-l
    // activation can differ from base only if it is within l hops of r,
    // so B_l = ball[0 .. level_end[l]) is the layer-l dirty set.
    ball.clear();
    ball.push_back(static_cast<int32_t>(r));
    dist[r] = 0;
    level_end[0] = 1;
    int64_t frontier = 0;
    for (int64_t l = 1; l <= L; ++l) {
      const int64_t frontier_end = static_cast<int64_t>(ball.size());
      for (; frontier < frontier_end; ++frontier) {
        const int64_t v = ball[frontier];
        for (int64_t t = adj_offsets_[v]; t < adj_offsets_[v + 1]; ++t) {
          const int32_t u = adj_[t];
          if (dist[u] == 0xFF) {
            dist[u] = static_cast<uint8_t>(l);
            ball.push_back(u);
          }
        }
      }
      level_end[l] = static_cast<int64_t>(ball.size());
    }
    // Layer 0 of the view: only row r changes (features zeroed).
    std::fill_n(bufs[0].begin() + r * f, f, 0.0f);
    for (int64_t l = 1; l <= L; ++l) {
      GinDirtyRows(layers[l - 1], bufs[l - 1].data(), in_offsets_.data(),
                   in_srcs_.data(), r, ball.data(), level_end[l], agg.data(),
                   hid.data(), bufs[l].data());
    }
    // Eq. 15 displacement. Rows outside the ball match base bit-for-bit
    // and would contribute exactly +0.0, so only ball rows are summed —
    // in ascending row order, making the result bitwise-identical to the
    // dense all-rows reduction. Row r is zeroed by the Eq. 15 mask and
    // contributes ||h_r||^2.
    sorted.assign(ball.begin(), ball.end());
    std::sort(sorted.begin(), sorted.end());
    double sq = 0.0;
    const float* h = layer_acts_.back().data();
    const float* hv = bufs[static_cast<size_t>(L)].data();
    for (const int32_t i : sorted) {
      const float* hrow = h + static_cast<int64_t>(i) * d;
      if (i == r) {
        for (int64_t j = 0; j < d; ++j) {
          sq += static_cast<double>(hrow[j]) * hrow[j];
        }
      } else {
        const float* vrow = hv + static_cast<int64_t>(i) * d;
        for (int64_t j = 0; j < d; ++j) {
          const float delta = hrow[j] - vrow[j];
          sq += static_cast<double>(delta) * delta;
        }
      }
    }
    out[r - begin] = sq;
    // Restore the touched rows and BFS marks for the next view.
    std::copy_n(x_ + r * f, f, bufs[0].begin() + r * f);
    for (int64_t l = 1; l <= L; ++l) {
      const int64_t od = layers[l - 1].out;
      for (int64_t t = 0; t < level_end[l]; ++t) {
        const int64_t v = ball[t];
        std::copy_n(layer_acts_[l - 1].data() + v * od, od,
                    bufs[static_cast<size_t>(l)].begin() + v * od);
      }
    }
    for (const int32_t v : ball) dist[v] = 0xFF;
  }
}

}  // namespace sgcl
