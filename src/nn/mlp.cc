#include "nn/mlp.h"

#include "tensor/ops.h"

namespace sgcl {

Mlp::Mlp(const std::vector<int64_t>& dims, Rng* rng, bool final_activation)
    : final_activation_(final_activation) {
  SGCL_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    if (i + 1 < layers_.size() || final_activation_) h = Relu(h);
  }
  return h;
}

std::vector<Tensor> Mlp::Parameters() const {
  std::vector<Tensor> params;
  for (const auto& layer : layers_) {
    auto p = layer->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

}  // namespace sgcl
