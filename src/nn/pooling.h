// Graph-level readout over batched node embeddings.
#ifndef SGCL_NN_POOLING_H_
#define SGCL_NN_POOLING_H_

#include <string>

#include "graph/graph_batch.h"
#include "tensor/tensor.h"

namespace sgcl {

enum class PoolingKind { kSum, kMean, kMax };

const char* PoolingKindToString(PoolingKind kind);

// Pools node embeddings x [N, d] into graph embeddings [num_graphs, d]
// using each node's graph id. Empty graphs pool to zero rows.
Tensor Pool(const Tensor& x, const GraphBatch& batch, PoolingKind kind);

}  // namespace sgcl

#endif  // SGCL_NN_POOLING_H_
