// Configurable multi-layer GNN encoder (the paper's f_q / f_k towers).
#ifndef SGCL_NN_ENCODER_H_
#define SGCL_NN_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "graph/graph_batch.h"
#include "nn/graph_conv.h"
#include "nn/layer_norm.h"
#include "nn/pooling.h"

namespace sgcl {

enum class GnnArch { kGin, kGcn, kGat, kSage };

const char* GnnArchToString(GnnArch arch);

struct EncoderConfig {
  GnnArch arch = GnnArch::kGin;
  int64_t in_dim = 0;
  int64_t hidden_dim = 32;
  int num_layers = 3;       // paper: 3 for TU, 5 for transfer
  PoolingKind pooling = PoolingKind::kSum;
  int gat_heads = 2;        // only for kGat
  // Optional LayerNorm between convolutions (stabilizes sum aggregation
  // on dense graphs; off by default to match the paper's architecture).
  bool use_layer_norm = false;
};

class GnnEncoder : public Module {
 public:
  GnnEncoder(const EncoderConfig& config, Rng* rng);

  // Final-layer node embeddings [N, hidden_dim]. ReLU after every layer.
  Tensor EncodeNodes(const Tensor& x, const GraphBatch& batch) const;

  // Graph embeddings [num_graphs, hidden_dim]: pooled node embeddings.
  // When `node_weights` (shape [N,1], constants) is provided, node
  // embeddings are reweighted before pooling — used by the paper's Eq. 21
  // where K_V scores scale the anchor representation.
  Tensor EncodeGraphs(const GraphBatch& batch,
                      const Tensor* node_weights = nullptr) const;

  std::vector<Tensor> Parameters() const override;

  const EncoderConfig& config() const { return config_; }

  // Layer introspection for tape-free inference kernels
  // (nn/gin_inference.h): conv layer l and its optional LayerNorm
  // (nullptr when layer norm is disabled).
  const GraphConv& conv(int64_t l) const { return *layers_[l]; }
  const LayerNorm* norm(int64_t l) const {
    return norms_.empty() ? nullptr : norms_[l].get();
  }

 private:
  EncoderConfig config_;
  std::vector<std::unique_ptr<GraphConv>> layers_;
  std::vector<std::unique_ptr<LayerNorm>> norms_;  // empty unless enabled
};

}  // namespace sgcl

#endif  // SGCL_NN_ENCODER_H_
