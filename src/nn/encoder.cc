#include "nn/encoder.h"

#include "nn/gat_conv.h"
#include "nn/gcn_conv.h"
#include "nn/gin_conv.h"
#include "nn/sage_conv.h"
#include "tensor/ops.h"

namespace sgcl {

const char* GnnArchToString(GnnArch arch) {
  switch (arch) {
    case GnnArch::kGin:
      return "GIN";
    case GnnArch::kGcn:
      return "GCN";
    case GnnArch::kGat:
      return "GAT";
    case GnnArch::kSage:
      return "GraphSAGE";
  }
  return "unknown";
}

namespace {

std::unique_ptr<GraphConv> MakeConv(GnnArch arch, int64_t in_dim,
                                    int64_t out_dim, int gat_heads, Rng* rng) {
  switch (arch) {
    case GnnArch::kGin:
      return std::make_unique<GinConv>(in_dim, out_dim, rng);
    case GnnArch::kGcn:
      return std::make_unique<GcnConv>(in_dim, out_dim, rng);
    case GnnArch::kGat:
      return std::make_unique<GatConv>(in_dim, out_dim, rng, gat_heads);
    case GnnArch::kSage:
      return std::make_unique<SageConv>(in_dim, out_dim, rng);
  }
  SGCL_CHECK(false);
  return nullptr;
}

}  // namespace

GnnEncoder::GnnEncoder(const EncoderConfig& config, Rng* rng)
    : config_(config) {
  SGCL_CHECK_GT(config.in_dim, 0);
  SGCL_CHECK_GT(config.hidden_dim, 0);
  SGCL_CHECK_GT(config.num_layers, 0);
  for (int l = 0; l < config.num_layers; ++l) {
    const int64_t in = (l == 0) ? config.in_dim : config.hidden_dim;
    layers_.push_back(
        MakeConv(config.arch, in, config.hidden_dim, config.gat_heads, rng));
    if (config.use_layer_norm) {
      norms_.push_back(std::make_unique<LayerNorm>(config.hidden_dim));
    }
  }
}

Tensor GnnEncoder::EncodeNodes(const Tensor& x, const GraphBatch& batch) const {
  Tensor h = x;
  for (size_t l = 0; l < layers_.size(); ++l) {
    h = layers_[l]->Forward(h, batch);
    if (!norms_.empty()) h = norms_[l]->Forward(h);
    h = Relu(h);
  }
  return h;
}

Tensor GnnEncoder::EncodeGraphs(const GraphBatch& batch,
                                const Tensor* node_weights) const {
  Tensor nodes = EncodeNodes(batch.features, batch);
  if (node_weights != nullptr) {
    SGCL_CHECK_EQ(node_weights->rows(), batch.num_nodes);
    nodes = MulBroadcastCol(nodes, *node_weights);
  }
  return Pool(nodes, batch, config_.pooling);
}

std::vector<Tensor> GnnEncoder::Parameters() const {
  std::vector<Tensor> params;
  for (const auto& layer : layers_) {
    auto p = layer->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  for (const auto& norm : norms_) {
    auto p = norm->Parameters();
    params.insert(params.end(), p.begin(), p.end());
  }
  return params;
}

}  // namespace sgcl
