#include "nn/layer_norm.h"

#include <cmath>

#include "tensor/tensor.h"

namespace sgcl {

LayerNorm::LayerNorm(int64_t dim, float eps)
    : gamma_(Tensor::Full({1, dim}, 1.0f, /*requires_grad=*/true)),
      beta_(Tensor::Zeros({1, dim}, /*requires_grad=*/true)),
      eps_(eps) {
  SGCL_CHECK_GT(dim, 0);
}

Tensor LayerNorm::Forward(const Tensor& x) const {
  SGCL_CHECK_EQ(x.dim(), 2);
  const int64_t n = x.rows(), d = x.cols();
  SGCL_CHECK_EQ(d, gamma_.cols());
  // Forward: xhat = (x - mu) / sigma; y = gamma * xhat + beta.
  std::vector<float> out(static_cast<size_t>(n * d));
  std::vector<float> xhat(static_cast<size_t>(n * d));
  std::vector<float> inv_sigma(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double mean = 0.0;
    for (int64_t j = 0; j < d; ++j) mean += x.At(i, j);
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double c = x.At(i, j) - mean;
      var += c * c;
    }
    var /= static_cast<double>(d);
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    inv_sigma[i] = inv;
    for (int64_t j = 0; j < d; ++j) {
      const float h = (x.At(i, j) - static_cast<float>(mean)) * inv;
      xhat[i * d + j] = h;
      out[i * d + j] = gamma_.data()[j] * h + beta_.data()[j];
    }
  }
  auto x_impl = x.impl();
  auto g_impl = gamma_.impl();
  auto b_impl = beta_.impl();
  return internal::MakeOpOutput(
      {n, d}, std::move(out), {x, gamma_, beta_},
      [x_impl, g_impl, b_impl, xhat = std::move(xhat),
       inv_sigma = std::move(inv_sigma), n, d](TensorImpl& self) {
        const float* dy = self.grad.data();
        if (g_impl->requires_grad) {
          g_impl->EnsureGradAllocated();
          for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = 0; j < d; ++j) {
              g_impl->grad[j] += dy[i * d + j] * xhat[i * d + j];
            }
          }
        }
        if (b_impl->requires_grad) {
          b_impl->EnsureGradAllocated();
          for (int64_t i = 0; i < n; ++i) {
            for (int64_t j = 0; j < d; ++j) b_impl->grad[j] += dy[i * d + j];
          }
        }
        if (!x_impl->requires_grad) return;
        x_impl->EnsureGradAllocated();
        for (int64_t i = 0; i < n; ++i) {
          // dxhat = dy * gamma; dx = inv_sigma * (dxhat - mean(dxhat)
          //         - xhat * mean(dxhat * xhat)).
          double mean_dxhat = 0.0, mean_dxhat_xhat = 0.0;
          for (int64_t j = 0; j < d; ++j) {
            const double dxh =
                static_cast<double>(dy[i * d + j]) * g_impl->data[j];
            mean_dxhat += dxh;
            mean_dxhat_xhat += dxh * xhat[i * d + j];
          }
          mean_dxhat /= static_cast<double>(d);
          mean_dxhat_xhat /= static_cast<double>(d);
          for (int64_t j = 0; j < d; ++j) {
            const double dxh =
                static_cast<double>(dy[i * d + j]) * g_impl->data[j];
            x_impl->grad[i * d + j] += static_cast<float>(
                inv_sigma[i] *
                (dxh - mean_dxhat - xhat[i * d + j] * mean_dxhat_xhat));
          }
        }
      });
}

std::vector<Tensor> LayerNorm::Parameters() const { return {gamma_, beta_}; }

}  // namespace sgcl
