// Layer normalization (Ba et al., 2016): per-row standardization with a
// learnable gain and bias. Offered as an optional stabilizer for deep
// sum-aggregation encoders (EncoderConfig::use_layer_norm); the paper's
// GIN reference implementation normalizes between layers, and on dense
// graphs un-normalized sums can dominate training.
#ifndef SGCL_NN_LAYER_NORM_H_
#define SGCL_NN_LAYER_NORM_H_

#include "nn/module.h"

namespace sgcl {

class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  // x [n, dim] -> gamma * (x - mean_row) / sqrt(var_row + eps) + beta.
  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }
  float eps() const { return eps_; }

 private:
  Tensor gamma_;  // [1, dim], ones
  Tensor beta_;   // [1, dim], zeros
  float eps_;
};

}  // namespace sgcl

#endif  // SGCL_NN_LAYER_NORM_H_
