// Base interface for trainable components.
#ifndef SGCL_NN_MODULE_H_
#define SGCL_NN_MODULE_H_

#include <vector>

#include "tensor/tensor.h"

namespace sgcl {

// A module owns trainable tensors and exposes them for optimizers,
// checkpoint copying, and weight perturbation (SimGRACE).
class Module {
 public:
  virtual ~Module() = default;

  // Handles (shared storage) to every trainable tensor in this module.
  virtual std::vector<Tensor> Parameters() const = 0;

  // Total trainable scalar count.
  int64_t NumParameters() const;

  // Copies parameter values from `other` (shapes must match pairwise).
  void CopyParametersFrom(const Module& other);
};

// Concatenates the parameter lists of several modules.
std::vector<Tensor> ConcatParameters(
    std::initializer_list<const Module*> modules);

}  // namespace sgcl

#endif  // SGCL_NN_MODULE_H_
