// Tape-free fused forward for GIN encoder stacks.
//
// The exact Lipschitz generator (core/lipschitz_generator.h) encodes
// N + 1 masked views per graph and never backpropagates through them, so
// the autograd tape — per-op output allocation, parent-gradient zeroing,
// and backward closures — is pure overhead on its hot path. A
// GinInferencePlan snapshots raw weight pointers from a GnnEncoder and
// replays the same arithmetic (aggregation, MLP, optional LayerNorm,
// ReLU) with reusable flat buffers and no tape.
//
// Determinism: every stage is row-partitioned via ParallelFor and each
// row accumulates in the same order as the tape ops (neighbor sums in
// edge order, matmul in ascending-k order), so the output is identical
// for every thread count and matches GnnEncoder::EncodeNodes exactly.
//
// The plan holds non-owning pointers into the encoder's parameter
// tensors: it is invalidated by destroying the encoder (reads the
// current weights, so training steps between builds are fine).
#ifndef SGCL_NN_GIN_INFERENCE_H_
#define SGCL_NN_GIN_INFERENCE_H_

#include <cstdint>
#include <vector>

#include "nn/encoder.h"

namespace sgcl {

// Raw-pointer view of one GIN layer: conv MLP weights plus the optional
// LayerNorm parameters (gamma == nullptr when disabled).
struct GinLayerParams {
  const float* w1;  // [in, hid]
  const float* b1;  // [1, hid]
  const float* w2;  // [hid, out]
  const float* b2;  // [1, out]
  int64_t in, hid, out;
  float eps_self;      // GIN self-weight is (1 + eps_self)
  const float* gamma;  // LayerNorm gain/bias, nullptr when disabled
  const float* beta;
  float ln_eps;
};

class GinInferencePlan {
 public:
  // Builds a plan when `encoder` is a plain GIN stack (every conv a
  // GinConv with a 2-layer biased MLP); otherwise returns an invalid
  // plan and callers must fall back to the tape path. Optional LayerNorm
  // is supported.
  static GinInferencePlan Build(const GnnEncoder& encoder);

  bool valid() const { return !layers_.empty(); }
  int64_t out_dim() const { return layers_.empty() ? 0 : layers_.back().out; }

  // Final-layer node embeddings for a (possibly block-diagonal) directed
  // edge list: writes an [n, out_dim] row-major matrix into `out`.
  // Matches GnnEncoder::EncodeNodes on the same inputs. Re-entrant: all
  // scratch is local, so concurrent calls (e.g. one per graph) are safe.
  void EncodeNodes(const float* x, int64_t n, const int32_t* edge_src,
                   const int32_t* edge_dst, int64_t num_edges,
                   float* out) const;

  // Convenience overload for a block-diagonal GraphBatch (the serving
  // layer's unit of work): one fused pass over the stacked features and
  // offset-shifted edges. Writes [batch.num_nodes, out_dim] into `out`.
  void EncodeBatch(const GraphBatch& batch, float* out) const;

  const std::vector<GinLayerParams>& layers() const { return layers_; }

 private:
  std::vector<GinLayerParams> layers_;
};

// Batched masked-view kernel for the exact Lipschitz generator (§V):
// squared representation displacements ||H - Ĥ_r||_F^2 (Eq. 15, with row
// r of Ĥ_r zeroed) for single-node masked views of one graph.
//
// An L-layer message-passing encoder changes only the nodes within L
// hops of the masked node r — every other row of Ĥ_r equals the base
// encode bit-for-bit. The kernel therefore encodes the base graph once
// (keeping every layer's activations) and per view recomputes just the
// dirty l-hop ball at layer l, restoring the touched rows afterwards.
// On sparse graphs that replaces L*n re-encoded rows per view with
// |B_1| + ... + |B_L| rows.
class GinMaskedViewKernel {
 public:
  // Encodes the base graph through `plan`. All pointers (plan, features,
  // edge lists) must outlive the kernel.
  GinMaskedViewKernel(const GinInferencePlan& plan, const float* x,
                      int64_t n, const int32_t* edge_src,
                      const int32_t* edge_dst, int64_t num_edges);

  // Base final-layer activations [n, out_dim].
  const float* base() const { return layer_acts_.back().data(); }

  // Writes D_R(G, Ĝ_r)^2 for masked views r in [begin, end) into
  // out[0 .. end-begin). Identical to diffing a full re-encode of each
  // view against base() row by row. Re-entrant (per-call scratch), and
  // independent of how callers partition [0, n) across calls.
  void ViewDisplacementsSq(int64_t begin, int64_t end, double* out) const;

 private:
  const GinInferencePlan* plan_;
  const float* x_;
  int64_t n_;
  // In-edge CSR (ascending edge order) and undirected neighbor CSR.
  std::vector<int64_t> in_offsets_;
  std::vector<int32_t> in_srcs_;
  std::vector<int64_t> adj_offsets_;
  std::vector<int32_t> adj_;
  std::vector<std::vector<float>> layer_acts_;  // h^1 .. h^L
};

}  // namespace sgcl

#endif  // SGCL_NN_GIN_INFERENCE_H_
