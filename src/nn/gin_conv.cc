#include "nn/gin_conv.h"

#include "tensor/graph_ops.h"
#include "tensor/ops.h"

namespace sgcl {

GinConv::GinConv(int64_t in_dim, int64_t out_dim, Rng* rng, float eps)
    : mlp_(std::make_unique<Mlp>(std::vector<int64_t>{in_dim, out_dim, out_dim},
                                 rng)),
      eps_(eps) {}

Tensor GinConv::Forward(const Tensor& x, const GraphBatch& batch) const {
  SGCL_CHECK_EQ(x.rows(), batch.num_nodes);
  Tensor messages = GatherRows(x, batch.edge_src);
  if (batch.edge_weights.numel() > 0) {
    SGCL_CHECK_EQ(batch.edge_weights.rows(),
                  static_cast<int64_t>(batch.edge_src.size()));
    messages = MulBroadcastCol(messages, batch.edge_weights);
  }
  Tensor neighbor_sum =
      ScatterAddRows(messages, batch.edge_dst, batch.num_nodes);
  Tensor agg = Add(MulScalar(x, 1.0f + eps_), neighbor_sum);
  return mlp_->Forward(agg);
}

std::vector<Tensor> GinConv::Parameters() const { return mlp_->Parameters(); }

}  // namespace sgcl
