#include "nn/gcn_conv.h"

#include <cmath>

#include "tensor/graph_ops.h"
#include "tensor/ops.h"

namespace sgcl {

GcnConv::GcnConv(int64_t in_dim, int64_t out_dim, Rng* rng)
    : linear_(std::make_unique<Linear>(in_dim, out_dim, rng)) {}

Tensor GcnConv::Forward(const Tensor& x, const GraphBatch& batch) const {
  SGCL_CHECK_EQ(x.rows(), batch.num_nodes);
  Tensor xw = linear_->Forward(x);
  // Self-loop-augmented degrees (constants; no grad flows through them).
  std::vector<int64_t> deg = batch.Degrees();
  std::vector<float> inv_self(static_cast<size_t>(batch.num_nodes));
  for (int64_t v = 0; v < batch.num_nodes; ++v) {
    inv_self[v] = 1.0f / static_cast<float>(deg[v] + 1);
  }
  Tensor self_term = MulBroadcastCol(
      xw, Tensor::FromVector({batch.num_nodes, 1}, std::move(inv_self)));
  const int64_t e = static_cast<int64_t>(batch.edge_src.size());
  if (e == 0) return self_term;
  std::vector<float> coef(static_cast<size_t>(e));
  for (int64_t r = 0; r < e; ++r) {
    coef[r] = 1.0f / std::sqrt(
                         static_cast<float>(deg[batch.edge_src[r]] + 1) *
                         static_cast<float>(deg[batch.edge_dst[r]] + 1));
  }
  Tensor messages =
      MulBroadcastCol(GatherRows(xw, batch.edge_src),
                      Tensor::FromVector({e, 1}, std::move(coef)));
  Tensor neighbor_term =
      ScatterAddRows(messages, batch.edge_dst, batch.num_nodes);
  return Add(self_term, neighbor_term);
}

std::vector<Tensor> GcnConv::Parameters() const {
  return linear_->Parameters();
}

}  // namespace sgcl
