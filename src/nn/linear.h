// Fully-connected layer: y = xW (+ b).
#ifndef SGCL_NN_LINEAR_H_
#define SGCL_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace sgcl {

class Linear : public Module {
 public:
  Linear(int64_t in_dim, int64_t out_dim, Rng* rng, bool use_bias = true);

  // x [n, in_dim] -> [n, out_dim].
  Tensor Forward(const Tensor& x) const;

  std::vector<Tensor> Parameters() const override;

  int64_t in_dim() const { return weight_.rows(); }
  int64_t out_dim() const { return weight_.cols(); }
  const Tensor& weight() const { return weight_; }
  // Empty (rank-0) tensor when constructed with use_bias = false.
  const Tensor& bias() const { return bias_; }
  bool use_bias() const { return use_bias_; }

 private:
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [1, out]; unset when !use_bias_
  bool use_bias_;
};

}  // namespace sgcl

#endif  // SGCL_NN_LINEAR_H_
