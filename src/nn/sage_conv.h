// GraphSAGE layer with mean aggregator (Hamilton et al., NeurIPS'17):
//   h_i' = W_self h_i + W_neigh mean_{j in N(i)} h_j + b.
#ifndef SGCL_NN_SAGE_CONV_H_
#define SGCL_NN_SAGE_CONV_H_

#include <memory>

#include "common/rng.h"
#include "nn/graph_conv.h"
#include "nn/linear.h"

namespace sgcl {

class SageConv : public GraphConv {
 public:
  SageConv(int64_t in_dim, int64_t out_dim, Rng* rng);

  Tensor Forward(const Tensor& x, const GraphBatch& batch) const override;
  std::vector<Tensor> Parameters() const override;

 private:
  std::unique_ptr<Linear> self_linear_;   // with bias
  std::unique_ptr<Linear> neigh_linear_;  // no bias
};

}  // namespace sgcl

#endif  // SGCL_NN_SAGE_CONV_H_
