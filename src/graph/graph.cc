#include "graph/graph.h"

#include "common/string_util.h"

namespace sgcl {

Graph::Graph(int64_t num_nodes, int64_t feat_dim)
    : num_nodes_(num_nodes), feat_dim_(feat_dim) {
  SGCL_CHECK_GE(num_nodes, 0);
  SGCL_CHECK_GE(feat_dim, 0);
  features_.assign(static_cast<size_t>(num_nodes * feat_dim), 0.0f);
}

int64_t Graph::AddNodes(int64_t count) {
  SGCL_CHECK_GE(count, 0);
  const int64_t first = num_nodes_;
  num_nodes_ += count;
  features_.resize(static_cast<size_t>(num_nodes_ * feat_dim_), 0.0f);
  if (!semantic_mask_.empty()) {
    semantic_mask_.resize(static_cast<size_t>(num_nodes_), 0);
  }
  return first;
}

void Graph::AddUndirectedEdge(int64_t a, int64_t b) {
  SGCL_CHECK(a >= 0 && a < num_nodes_);
  SGCL_CHECK(b >= 0 && b < num_nodes_);
  if (!edge_set_.insert(EdgeKey(a, b)).second) return;
  edge_src_.push_back(static_cast<int32_t>(a));
  edge_dst_.push_back(static_cast<int32_t>(b));
  if (a != b) {
    edge_src_.push_back(static_cast<int32_t>(b));
    edge_dst_.push_back(static_cast<int32_t>(a));
  }
}

bool Graph::HasEdge(int64_t a, int64_t b) const {
  if (a < 0 || a >= num_nodes_ || b < 0 || b >= num_nodes_) return false;
  return edge_set_.count(EdgeKey(a, b)) > 0;
}

bool Graph::RemoveUndirectedEdge(int64_t a, int64_t b) {
  if (!HasEdge(a, b)) return false;
  edge_set_.erase(EdgeKey(a, b));
  // Filter both directed copies out of the edge arrays.
  size_t w = 0;
  for (size_t r = 0; r < edge_src_.size(); ++r) {
    const bool match = (edge_src_[r] == a && edge_dst_[r] == b) ||
                       (edge_src_[r] == b && edge_dst_[r] == a);
    if (!match) {
      edge_src_[w] = edge_src_[r];
      edge_dst_[w] = edge_dst_[r];
      ++w;
    }
  }
  edge_src_.resize(w);
  edge_dst_.resize(w);
  return true;
}

std::vector<int64_t> Graph::Degrees() const {
  std::vector<int64_t> deg(static_cast<size_t>(num_nodes_), 0);
  // Each undirected edge appears as two directed entries; counting
  // out-edges per node counts each incident edge once. A self-loop is
  // stored once and so counts once.
  for (int32_t s : edge_src_) ++deg[s];
  return deg;
}

std::vector<int32_t> Graph::Neighbors(int64_t node) const {
  SGCL_CHECK(node >= 0 && node < num_nodes_);
  std::vector<int32_t> out;
  for (size_t r = 0; r < edge_src_.size(); ++r) {
    if (edge_src_[r] == node) out.push_back(edge_dst_[r]);
  }
  return out;
}

Status Graph::Validate() const {
  if (num_nodes_ < 0) return Status::InvalidArgument("negative node count");
  if (static_cast<int64_t>(features_.size()) != num_nodes_ * feat_dim_) {
    return Status::InvalidArgument(StrFormat(
        "feature buffer has %zu entries, want %lld", features_.size(),
        static_cast<long long>(num_nodes_ * feat_dim_)));
  }
  if (edge_src_.size() != edge_dst_.size()) {
    return Status::InvalidArgument("edge arrays have different lengths");
  }
  for (size_t r = 0; r < edge_src_.size(); ++r) {
    if (edge_src_[r] < 0 || edge_src_[r] >= num_nodes_ || edge_dst_[r] < 0 ||
        edge_dst_[r] >= num_nodes_) {
      return Status::OutOfRange(
          StrFormat("edge %zu references a node outside [0, %lld)", r,
                    static_cast<long long>(num_nodes_)));
    }
  }
  if (!semantic_mask_.empty() &&
      static_cast<int64_t>(semantic_mask_.size()) != num_nodes_) {
    return Status::InvalidArgument("semantic mask size mismatch");
  }
  return Status::OK();
}

Graph Graph::InducedSubgraph(const std::vector<uint8_t>& keep) const {
  SGCL_CHECK_EQ(static_cast<int64_t>(keep.size()), num_nodes_);
  std::vector<int32_t> remap(static_cast<size_t>(num_nodes_), -1);
  int64_t kept = 0;
  for (int64_t v = 0; v < num_nodes_; ++v) {
    if (keep[v]) remap[v] = static_cast<int32_t>(kept++);
  }
  Graph out(kept, feat_dim_);
  for (int64_t v = 0; v < num_nodes_; ++v) {
    if (remap[v] < 0) continue;
    for (int64_t j = 0; j < feat_dim_; ++j) {
      out.set_feature(remap[v], j, feature(v, j));
    }
  }
  // Walk directed entries once per undirected edge (src <= dst covers
  // self-loops as well).
  for (size_t r = 0; r < edge_src_.size(); ++r) {
    const int32_t a = edge_src_[r], b = edge_dst_[r];
    if (a > b) continue;
    if (remap[a] >= 0 && remap[b] >= 0) {
      out.AddUndirectedEdge(remap[a], remap[b]);
    }
  }
  out.set_label(label_);
  out.set_task_labels(task_labels_);
  out.set_scaffold_id(scaffold_id_);
  if (!semantic_mask_.empty()) {
    std::vector<uint8_t> mask(static_cast<size_t>(kept), 0);
    for (int64_t v = 0; v < num_nodes_; ++v) {
      if (remap[v] >= 0) mask[remap[v]] = semantic_mask_[v];
    }
    out.set_semantic_mask(std::move(mask));
  }
  return out;
}

}  // namespace sgcl
