// Train/test splitting utilities: k-fold CV, stratification, holdout,
// scaffold splits, and label-rate subsetting for semi-supervised runs.
#ifndef SGCL_GRAPH_SPLITS_H_
#define SGCL_GRAPH_SPLITS_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/dataset.h"

namespace sgcl {

// k roughly equal folds of a random permutation of [0, n).
std::vector<std::vector<int64_t>> KFoldIndices(int64_t n, int k, Rng* rng);

// k folds with per-class proportional allocation. labels[i] >= 0.
std::vector<std::vector<int64_t>> StratifiedKFoldIndices(
    const std::vector<int>& labels, int k, Rng* rng);

struct HoldoutSplit {
  std::vector<int64_t> train;
  std::vector<int64_t> test;
};

// Random (1 - test_fraction)/test_fraction holdout.
HoldoutSplit TrainTestSplit(int64_t n, double test_fraction, Rng* rng);

struct ThreeWaySplit {
  std::vector<int64_t> train;
  std::vector<int64_t> valid;
  std::vector<int64_t> test;
};

// Scaffold split: graphs are grouped by scaffold_id; groups (largest first,
// as in the MoleculeNet protocol) fill train until `train_fraction`, then
// valid until `train_fraction + valid_fraction`, then test. Deterministic.
// Graphs without a scaffold id (-1) each form their own group.
ThreeWaySplit ScaffoldSplit(const GraphDataset& dataset,
                            double train_fraction, double valid_fraction);

// A stratified subset of the indices containing ~rate of each class;
// at least one example per class present in `labels`. Used for
// 1% / 10% label-rate semi-supervised experiments (Table VI).
std::vector<int64_t> LabelRateSubset(const std::vector<int>& labels,
                                     double rate, Rng* rng);

}  // namespace sgcl

#endif  // SGCL_GRAPH_SPLITS_H_
