#include "graph/dataset_io.h"

#include "common/io.h"
#include "common/string_util.h"

namespace sgcl {
namespace {

constexpr uint32_t kMagic = 0x53474444u;  // "SGDD"
constexpr uint32_t kVersion = 1;

}  // namespace

Status SaveDataset(const GraphDataset& dataset, const std::string& path) {
  BinaryWriter writer(path);
  if (!writer.ok()) {
    return Status::InvalidArgument(
        StrFormat("cannot open %s for writing", path.c_str()));
  }
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);
  writer.WriteString(dataset.name());
  writer.WriteI64(dataset.num_classes());
  writer.WriteI64(dataset.num_tasks());
  writer.WriteI64(dataset.size());
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const Graph& g = dataset.graph(i);
    writer.WriteI64(g.num_nodes());
    writer.WriteI64(g.feat_dim());
    writer.WriteFloatVector(g.features());
    writer.WriteI32Vector(g.edge_src());
    writer.WriteI32Vector(g.edge_dst());
    writer.WriteI64(g.label());
    writer.WriteI64(g.scaffold_id());
    writer.WriteFloatVector(g.task_labels());
    std::vector<int32_t> mask(g.semantic_mask().begin(),
                              g.semantic_mask().end());
    writer.WriteI32Vector(mask);
  }
  return writer.Close();
}

Result<GraphDataset> LoadDataset(const std::string& path) {
  BinaryReader reader(path);
  if (!reader.ok()) {
    return Status::NotFound(StrFormat("cannot open %s", path.c_str()));
  }
  if (reader.ReadU32() != kMagic) {
    return Status::InvalidArgument(
        StrFormat("%s is not an SGCL dataset file", path.c_str()));
  }
  if (reader.ReadU32() != kVersion) {
    return Status::InvalidArgument("unsupported dataset version");
  }
  const std::string name = reader.ReadString();
  const int64_t num_classes = reader.ReadI64();
  const int64_t num_tasks = reader.ReadI64();
  const int64_t size = reader.ReadI64();
  // Sanity caps so corrupt headers cannot trigger huge allocations.
  constexpr int64_t kMaxGraphs = 1LL << 24;
  constexpr int64_t kMaxNodes = 1LL << 24;
  constexpr int64_t kMaxFeatureEntries = 1LL << 26;
  if (!reader.ok() || size < 0 || size > kMaxGraphs || num_classes < 0 ||
      num_classes > (1 << 20) || num_tasks < 0 || num_tasks > (1 << 20)) {
    return Status::InvalidArgument("corrupt dataset header");
  }
  GraphDataset dataset(name, static_cast<int>(num_classes),
                       static_cast<int>(num_tasks));
  dataset.Reserve(size);
  for (int64_t i = 0; i < size; ++i) {
    const int64_t num_nodes = reader.ReadI64();
    const int64_t feat_dim = reader.ReadI64();
    if (!reader.ok() || num_nodes < 0 || num_nodes > kMaxNodes ||
        feat_dim < 0 || num_nodes * feat_dim > kMaxFeatureEntries) {
      return Status::InvalidArgument("corrupt graph header");
    }
    Graph g(num_nodes, feat_dim);
    std::vector<float> feats = reader.ReadFloatVector();
    if (static_cast<int64_t>(feats.size()) != num_nodes * feat_dim) {
      return Status::InvalidArgument("corrupt feature payload");
    }
    g.mutable_features() = std::move(feats);
    std::vector<int32_t> src = reader.ReadI32Vector();
    std::vector<int32_t> dst = reader.ReadI32Vector();
    if (!reader.ok() || src.size() != dst.size()) {
      return Status::InvalidArgument("corrupt edge payload");
    }
    // Undirected edges appear twice; AddUndirectedEdge dedups.
    for (size_t e = 0; e < src.size(); ++e) {
      if (src[e] < 0 || src[e] >= num_nodes || dst[e] < 0 ||
          dst[e] >= num_nodes) {
        return Status::OutOfRange("edge index outside graph");
      }
      g.AddUndirectedEdge(src[e], dst[e]);
    }
    g.set_label(static_cast<int>(reader.ReadI64()));
    g.set_scaffold_id(static_cast<int>(reader.ReadI64()));
    g.set_task_labels(reader.ReadFloatVector());
    std::vector<int32_t> mask32 = reader.ReadI32Vector();
    if (!mask32.empty()) {
      g.set_semantic_mask(
          std::vector<uint8_t>(mask32.begin(), mask32.end()));
    }
    dataset.Add(std::move(g));
  }
  SGCL_RETURN_NOT_OK(reader.Finish());
  SGCL_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

}  // namespace sgcl
