#include "graph/dataset_io.h"

#include <cstring>
#include <utility>

#include "common/crc32.h"
#include "common/io.h"
#include "common/string_util.h"
#include "graph/graph_record.h"

namespace sgcl {
namespace {

constexpr uint32_t kMagic = 0x53474444u;  // "SGDD"
constexpr uint32_t kLegacyVersion = 1;
// v2 serializes shared graph records (graph/graph_record.h), appends a
// whole-file CRC32, and publishes through AtomicWriteFile so a crashed
// save never leaves a torn dataset under the final name.
constexpr uint32_t kVersion = 2;

Status CheckHeaderCounts(int64_t size, int64_t num_classes,
                         int64_t num_tasks) {
  if (size < 0 || size > kMaxRecordGraphs || num_classes < 0 ||
      num_classes > (1 << 20) || num_tasks < 0 || num_tasks > (1 << 20)) {
    return Status::InvalidArgument("corrupt dataset header");
  }
  return Status::OK();
}

// The pre-CRC v1 layout (BinaryWriter vocabulary; semantic mask stored as
// an i32 vector). Kept so corpora frozen by older builds stay loadable.
Result<GraphDataset> ParseLegacyV1(BufferReader* reader,
                                   const std::string& path) {
  const std::string name = reader->ReadString();
  const int64_t num_classes = reader->ReadI64();
  const int64_t num_tasks = reader->ReadI64();
  const int64_t size = reader->ReadI64();
  if (!reader->ok()) return Status::InvalidArgument("corrupt dataset header");
  SGCL_RETURN_NOT_OK(CheckHeaderCounts(size, num_classes, num_tasks));
  GraphDataset dataset(name, static_cast<int>(num_classes),
                       static_cast<int>(num_tasks));
  dataset.Reserve(size);
  for (int64_t i = 0; i < size; ++i) {
    const int64_t num_nodes = reader->ReadI64();
    const int64_t feat_dim = reader->ReadI64();
    if (!reader->ok() || num_nodes < 0 || num_nodes > kMaxRecordNodes ||
        feat_dim < 0 || num_nodes * feat_dim > kMaxRecordFeatureEntries) {
      return Status::InvalidArgument("corrupt graph header");
    }
    Graph g(num_nodes, feat_dim);
    std::vector<float> feats = reader->ReadFloatVector();
    if (static_cast<int64_t>(feats.size()) != num_nodes * feat_dim) {
      return Status::InvalidArgument("corrupt feature payload");
    }
    g.mutable_features() = std::move(feats);
    std::vector<int32_t> src = reader->ReadI32Vector();
    std::vector<int32_t> dst = reader->ReadI32Vector();
    if (!reader->ok() || src.size() != dst.size()) {
      return Status::InvalidArgument("corrupt edge payload");
    }
    // Undirected edges appear twice; AddUndirectedEdge dedups.
    for (size_t e = 0; e < src.size(); ++e) {
      if (src[e] < 0 || src[e] >= num_nodes || dst[e] < 0 ||
          dst[e] >= num_nodes) {
        return Status::OutOfRange("edge index outside graph");
      }
      g.AddUndirectedEdge(src[e], dst[e]);
    }
    g.set_label(static_cast<int>(reader->ReadI64()));
    g.set_scaffold_id(static_cast<int>(reader->ReadI64()));
    g.set_task_labels(reader->ReadFloatVector());
    std::vector<int32_t> mask32 = reader->ReadI32Vector();
    if (!reader->ok()) return Status::InvalidArgument("corrupt graph trailer");
    if (!mask32.empty()) {
      g.set_semantic_mask(
          std::vector<uint8_t>(mask32.begin(), mask32.end()));
    }
    SGCL_RETURN_NOT_OK(dataset.TryAdd(std::move(g)));
  }
  SGCL_RETURN_NOT_OK(reader->Finish(path));
  return dataset;
}

}  // namespace

Status SaveDataset(const GraphDataset& dataset, const std::string& path) {
  BufferWriter writer;
  writer.WriteU32(kMagic);
  writer.WriteU32(kVersion);
  writer.WriteString(dataset.name());
  writer.WriteI64(dataset.num_classes());
  writer.WriteI64(dataset.num_tasks());
  writer.WriteI64(dataset.size());
  for (int64_t i = 0; i < dataset.size(); ++i) {
    AppendGraphRecord(dataset.graph(i), &writer);
  }
  const uint32_t crc = Crc32(writer.bytes());
  writer.WriteU32(crc);
  return AtomicWriteFile(path, writer.bytes());
}

Result<GraphDataset> LoadDataset(const std::string& path) {
  SGCL_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  BufferReader reader(bytes);
  if (reader.ReadU32() != kMagic || !reader.ok()) {
    return Status::InvalidArgument(
        StrFormat("%s is not an SGCL dataset file", path.c_str()));
  }
  const uint32_t version = reader.ReadU32();
  if (version == kLegacyVersion) {
    SGCL_ASSIGN_OR_RETURN(GraphDataset dataset,
                          ParseLegacyV1(&reader, path));
    SGCL_RETURN_NOT_OK(dataset.Validate());
    return dataset;
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported dataset version %u in %s", version,
                  path.c_str()));
  }
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::InvalidArgument("dataset file too short");
  }
  // The trailing 4 bytes hold the CRC of everything before them; check
  // before trusting any length field in the payload.
  const size_t body_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + body_size, sizeof(stored_crc));
  if (Crc32(bytes.data(), body_size) != stored_crc) {
    return Status::InvalidArgument(
        StrFormat("%s failed its CRC check (truncated or corrupt)",
                  path.c_str()));
  }
  const std::string name = reader.ReadString();
  const int64_t num_classes = reader.ReadI64();
  const int64_t num_tasks = reader.ReadI64();
  const int64_t size = reader.ReadI64();
  if (!reader.ok()) return Status::InvalidArgument("corrupt dataset header");
  SGCL_RETURN_NOT_OK(CheckHeaderCounts(size, num_classes, num_tasks));
  GraphDataset dataset(name, static_cast<int>(num_classes),
                       static_cast<int>(num_tasks));
  dataset.Reserve(size);
  for (int64_t i = 0; i < size; ++i) {
    SGCL_ASSIGN_OR_RETURN(Graph g, ParseGraphRecord(&reader));
    SGCL_RETURN_NOT_OK(dataset.TryAdd(std::move(g)));
  }
  if (reader.position() != body_size) {
    return Status::InvalidArgument(
        StrFormat("trailing bytes in %s", path.c_str()));
  }
  SGCL_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

}  // namespace sgcl
