#include "graph/dataset.h"

#include <utility>

#include "common/string_util.h"

namespace sgcl {

Result<int64_t> GraphDataset::FeatDim() const {
  if (graphs_.empty()) {
    return Status::FailedPrecondition(StrFormat(
        "dataset %s is empty: feature dimension is undefined", name_.c_str()));
  }
  return graphs_[0].feat_dim();
}

void GraphDataset::Add(Graph g) {
  SGCL_CHECK(graphs_.empty() || g.feat_dim() == graphs_[0].feat_dim());
  graphs_.push_back(std::move(g));
}

Status GraphDataset::TryAdd(Graph g) {
  if (!graphs_.empty() && g.feat_dim() != graphs_[0].feat_dim()) {
    return Status::InvalidArgument(
        StrFormat("graph has feat_dim %lld, dataset %s holds feat_dim %lld",
                  static_cast<long long>(g.feat_dim()), name_.c_str(),
                  static_cast<long long>(graphs_[0].feat_dim())));
  }
  graphs_.push_back(std::move(g));
  return Status::OK();
}

Result<std::vector<int>> GraphDataset::Labels() const {
  if (graphs_.empty()) {
    return Status::FailedPrecondition(
        StrFormat("dataset %s is empty: no labels", name_.c_str()));
  }
  std::vector<int> labels;
  labels.reserve(graphs_.size());
  for (const Graph& g : graphs_) labels.push_back(g.label());
  return labels;
}

DatasetStats GraphDataset::Stats() const {
  DatasetStats s;
  s.num_graphs = size();
  s.num_classes = num_classes_;
  if (graphs_.empty()) return s;
  double nodes = 0.0, edges = 0.0;
  for (const Graph& g : graphs_) {
    nodes += static_cast<double>(g.num_nodes());
    edges += static_cast<double>(g.num_undirected_edges());
  }
  s.avg_nodes = nodes / static_cast<double>(size());
  s.avg_edges = edges / static_cast<double>(size());
  return s;
}

Status GraphDataset::Validate() const {
  if (graphs_.empty()) return Status::OK();
  const int64_t d = graphs_[0].feat_dim();
  for (int64_t i = 0; i < size(); ++i) {
    const Graph& g = graphs_[i];
    SGCL_RETURN_NOT_OK(g.Validate());
    if (g.feat_dim() != d) {
      return Status::InvalidArgument(
          StrFormat("graph %lld has feat_dim %lld, want %lld",
                    static_cast<long long>(i),
                    static_cast<long long>(g.feat_dim()),
                    static_cast<long long>(d)));
    }
    if (num_tasks_ <= 1) {
      if (g.label() < 0 || g.label() >= num_classes_) {
        return Status::OutOfRange(
            StrFormat("graph %lld has label %d outside [0, %d)",
                      static_cast<long long>(i), g.label(), num_classes_));
      }
    } else if (static_cast<int>(g.task_labels().size()) != num_tasks_) {
      return Status::InvalidArgument(
          StrFormat("graph %lld has %zu task labels, want %d",
                    static_cast<long long>(i), g.task_labels().size(),
                    num_tasks_));
    }
  }
  return Status::OK();
}

namespace {

Status CheckSubsetIndices(const std::vector<int64_t>& indices, int64_t size,
                          const std::string& name) {
  for (int64_t i : indices) {
    if (i < 0 || i >= size) {
      return Status::OutOfRange(
          StrFormat("subset index %lld outside dataset %s of size %lld",
                    static_cast<long long>(i), name.c_str(),
                    static_cast<long long>(size)));
    }
  }
  return Status::OK();
}

}  // namespace

Result<GraphDataset> GraphDataset::Subset(
    const std::vector<int64_t>& indices) const& {
  SGCL_RETURN_NOT_OK(CheckSubsetIndices(indices, size(), name_));
  GraphDataset out(name_, num_classes_, num_tasks_);
  out.Reserve(static_cast<int64_t>(indices.size()));
  for (int64_t i : indices) out.Add(graphs_[i]);
  return out;
}

Result<GraphDataset> GraphDataset::Subset(
    const std::vector<int64_t>& indices) && {
  SGCL_RETURN_NOT_OK(CheckSubsetIndices(indices, size(), name_));
  GraphDataset out(name_, num_classes_, num_tasks_);
  out.Reserve(static_cast<int64_t>(indices.size()));
  // Moving the same index twice would hand out a moved-from graph; the
  // rvalue overload therefore rejects duplicates up front.
  std::vector<uint8_t> taken(graphs_.size(), 0);
  for (int64_t i : indices) {
    if (taken[static_cast<size_t>(i)]) {
      return Status::InvalidArgument(StrFormat(
          "duplicate index %lld in move-subset of dataset %s",
          static_cast<long long>(i), name_.c_str()));
    }
    taken[static_cast<size_t>(i)] = 1;
  }
  for (int64_t i : indices) out.Add(std::move(graphs_[i]));
  graphs_.clear();
  return out;
}

}  // namespace sgcl
