#include "graph/dataset.h"

#include "common/string_util.h"

namespace sgcl {

std::vector<int> GraphDataset::Labels() const {
  std::vector<int> labels;
  labels.reserve(graphs_.size());
  for (const Graph& g : graphs_) labels.push_back(g.label());
  return labels;
}

DatasetStats GraphDataset::Stats() const {
  DatasetStats s;
  s.num_graphs = size();
  s.num_classes = num_classes_;
  if (graphs_.empty()) return s;
  double nodes = 0.0, edges = 0.0;
  for (const Graph& g : graphs_) {
    nodes += static_cast<double>(g.num_nodes());
    edges += static_cast<double>(g.num_undirected_edges());
  }
  s.avg_nodes = nodes / static_cast<double>(size());
  s.avg_edges = edges / static_cast<double>(size());
  return s;
}

Status GraphDataset::Validate() const {
  const int64_t d = feat_dim();
  for (int64_t i = 0; i < size(); ++i) {
    const Graph& g = graphs_[i];
    SGCL_RETURN_NOT_OK(g.Validate());
    if (g.feat_dim() != d) {
      return Status::InvalidArgument(
          StrFormat("graph %lld has feat_dim %lld, want %lld",
                    static_cast<long long>(i),
                    static_cast<long long>(g.feat_dim()),
                    static_cast<long long>(d)));
    }
    if (num_tasks_ <= 1) {
      if (g.label() < 0 || g.label() >= num_classes_) {
        return Status::OutOfRange(
            StrFormat("graph %lld has label %d outside [0, %d)",
                      static_cast<long long>(i), g.label(), num_classes_));
      }
    } else if (static_cast<int>(g.task_labels().size()) != num_tasks_) {
      return Status::InvalidArgument(
          StrFormat("graph %lld has %zu task labels, want %d",
                    static_cast<long long>(i), g.task_labels().size(),
                    num_tasks_));
    }
  }
  return Status::OK();
}

GraphDataset GraphDataset::Subset(const std::vector<int64_t>& indices) const {
  GraphDataset out(name_, num_classes_, num_tasks_);
  out.Reserve(static_cast<int64_t>(indices.size()));
  for (int64_t i : indices) {
    SGCL_CHECK(i >= 0 && i < size());
    out.Add(graphs_[i]);
  }
  return out;
}

}  // namespace sgcl
