// A named collection of graphs with task metadata and summary statistics.
#ifndef SGCL_GRAPH_DATASET_H_
#define SGCL_GRAPH_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace sgcl {

struct DatasetStats {
  int64_t num_graphs = 0;
  double avg_nodes = 0.0;
  double avg_edges = 0.0;  // undirected
  int num_classes = 0;
};

class GraphDataset {
 public:
  GraphDataset() = default;
  GraphDataset(std::string name, int num_classes, int num_tasks = 1)
      : name_(std::move(name)), num_classes_(num_classes),
        num_tasks_(num_tasks) {}

  const std::string& name() const { return name_; }
  int num_classes() const { return num_classes_; }
  // >1 marks a multi-task binary-classification dataset (MoleculeNet-like).
  int num_tasks() const { return num_tasks_; }
  int64_t size() const { return static_cast<int64_t>(graphs_.size()); }
  int64_t feat_dim() const {
    return graphs_.empty() ? 0 : graphs_[0].feat_dim();
  }

  const Graph& graph(int64_t i) const {
    SGCL_CHECK(i >= 0 && i < size());
    return graphs_[i];
  }
  const std::vector<Graph>& graphs() const { return graphs_; }
  void Add(Graph g) { graphs_.push_back(std::move(g)); }
  void Reserve(int64_t n) { graphs_.reserve(n); }

  // Single-task class labels of all graphs.
  std::vector<int> Labels() const;

  DatasetStats Stats() const;

  // Validates every graph and checks label ranges & feature-dim agreement.
  Status Validate() const;

  // The subset given by `indices` (copying graphs).
  GraphDataset Subset(const std::vector<int64_t>& indices) const;

 private:
  std::string name_;
  int num_classes_ = 0;
  int num_tasks_ = 1;
  std::vector<Graph> graphs_;
};

}  // namespace sgcl

#endif  // SGCL_GRAPH_DATASET_H_
