// A named collection of graphs with task metadata and summary statistics.
//
// Error contract: accessors that have no meaningful value on an empty or
// malformed dataset are checked — feat_dim()/graph() are fatal on misuse
// (programming errors in trusted code), while FeatDim()/Labels()/Subset/
// TryAdd return Status/Result for untrusted inputs (CLI paths, files).
// Feature-dim agreement is enforced at Add() time: the first graph pins
// the dataset's feature width and every later Add must match, so a
// mixed-width dataset can never be constructed silently.
#ifndef SGCL_GRAPH_DATASET_H_
#define SGCL_GRAPH_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"

namespace sgcl {

struct DatasetStats {
  int64_t num_graphs = 0;
  double avg_nodes = 0.0;
  double avg_edges = 0.0;  // undirected
  int num_classes = 0;
};

class GraphDataset {
 public:
  GraphDataset() = default;
  GraphDataset(std::string name, int num_classes, int num_tasks = 1)
      : name_(std::move(name)), num_classes_(num_classes),
        num_tasks_(num_tasks) {}

  const std::string& name() const { return name_; }
  int num_classes() const { return num_classes_; }
  // >1 marks a multi-task binary-classification dataset (MoleculeNet-like).
  int num_tasks() const { return num_tasks_; }
  int64_t size() const { return static_cast<int64_t>(graphs_.size()); }

  // Feature width shared by all graphs. Fatal on an empty dataset —
  // callers that may legitimately hold an empty dataset use FeatDim().
  int64_t feat_dim() const {
    SGCL_CHECK(!graphs_.empty());
    return graphs_[0].feat_dim();
  }
  // FailedPrecondition on an empty dataset instead of a silent 0.
  [[nodiscard]] Result<int64_t> FeatDim() const;

  const Graph& graph(int64_t i) const {
    SGCL_CHECK(i >= 0 && i < size());
    return graphs_[i];
  }
  const std::vector<Graph>& graphs() const { return graphs_; }

  // Appends `g`; feature-dim disagreement with the graphs already present
  // is fatal (generators are trusted to be consistent).
  void Add(Graph g);
  // Status-returning Add for untrusted input (file loads): rejects a
  // feature-dim mismatch with InvalidArgument and leaves the dataset
  // unchanged.
  [[nodiscard]] Status TryAdd(Graph g);
  void Reserve(int64_t n) { graphs_.reserve(n); }

  // Single-task class labels of all graphs. FailedPrecondition when the
  // dataset is empty.
  [[nodiscard]] Result<std::vector<int>> Labels() const;

  DatasetStats Stats() const;

  // Validates every graph and checks label ranges & feature-dim agreement.
  [[nodiscard]] Status Validate() const;

  // The subset given by `indices`. The lvalue overload copies the selected
  // graphs; the rvalue overload moves them out of this dataset (which is
  // left valid but unspecified), so `std::move(ds).Subset(idx)` never
  // duplicates graph payloads. OutOfRange on any bad index.
  [[nodiscard]] Result<GraphDataset> Subset(
      const std::vector<int64_t>& indices) const&;
  [[nodiscard]] Result<GraphDataset> Subset(
      const std::vector<int64_t>& indices) &&;

 private:
  std::string name_;
  int num_classes_ = 0;
  int num_tasks_ = 1;
  std::vector<Graph> graphs_;
};

}  // namespace sgcl

#endif  // SGCL_GRAPH_DATASET_H_
