// Binary serialization of GraphDataset, so generated synthetic corpora
// can be frozen to disk and reloaded bit-identically (useful for sharing
// exact experiment inputs and for the CLI workflow).
//
// The v2 container shares the per-graph wire format with the sharded
// store (graph/graph_record.h), carries a whole-file CRC32, and saves
// through the crash-safe atomic-write path; v1 files (pre-CRC) remain
// loadable. Load rejects corruption with InvalidArgument, never a crash.
#ifndef SGCL_GRAPH_DATASET_IO_H_
#define SGCL_GRAPH_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "graph/dataset.h"

namespace sgcl {

Status SaveDataset(const GraphDataset& dataset, const std::string& path);

Result<GraphDataset> LoadDataset(const std::string& path);

}  // namespace sgcl

#endif  // SGCL_GRAPH_DATASET_IO_H_
