// Binary serialization of GraphDataset, so generated synthetic corpora
// can be frozen to disk and reloaded bit-identically (useful for sharing
// exact experiment inputs and for the CLI workflow).
#ifndef SGCL_GRAPH_DATASET_IO_H_
#define SGCL_GRAPH_DATASET_IO_H_

#include <string>

#include "common/status.h"
#include "graph/dataset.h"

namespace sgcl {

Status SaveDataset(const GraphDataset& dataset, const std::string& path);

Result<GraphDataset> LoadDataset(const std::string& path);

}  // namespace sgcl

#endif  // SGCL_GRAPH_DATASET_IO_H_
