// Wire format for one Graph record, shared by the v2 dataset container
// (graph/dataset_io.h) and the sharded on-disk store (data/shard_store.h).
//
// Layout (all little-endian, length-prefixed vectors as in common/io.h):
//   i64 num_nodes, i64 feat_dim, f32vec features, i32vec edge_src,
//   i32vec edge_dst, i64 label, i64 scaffold_id, f32vec task_labels,
//   str semantic_mask (raw uint8 bytes; empty when unknown).
// Undirected edges appear in both directions; the parser re-adds them via
// AddUndirectedEdge, which dedups, so a serialize/parse round trip is
// bit-identical on the directed edge lists.
#ifndef SGCL_GRAPH_GRAPH_RECORD_H_
#define SGCL_GRAPH_GRAPH_RECORD_H_

#include "common/io.h"
#include "common/status.h"
#include "graph/graph.h"

namespace sgcl {

// Sanity caps shared by every graph-record reader so corrupt headers can
// never trigger huge allocations.
inline constexpr int64_t kMaxRecordGraphs = int64_t{1} << 24;
inline constexpr int64_t kMaxRecordNodes = int64_t{1} << 24;
inline constexpr int64_t kMaxRecordFeatureEntries = int64_t{1} << 26;

void AppendGraphRecord(const Graph& graph, BufferWriter* writer);

// Decodes one record at the reader's cursor. Structural errors (negative
// sizes, edge indices outside the graph, payload/count mismatches) return
// InvalidArgument/OutOfRange without consuming a defined amount of input,
// so callers should discard the reader on failure.
Result<Graph> ParseGraphRecord(BufferReader* reader);

}  // namespace sgcl

#endif  // SGCL_GRAPH_GRAPH_RECORD_H_
