#include "graph/graph_record.h"

#include <utility>

namespace sgcl {

void AppendGraphRecord(const Graph& graph, BufferWriter* writer) {
  writer->WriteI64(graph.num_nodes());
  writer->WriteI64(graph.feat_dim());
  writer->WriteFloatVector(graph.features());
  writer->WriteI32Vector(graph.edge_src());
  writer->WriteI32Vector(graph.edge_dst());
  writer->WriteI64(graph.label());
  writer->WriteI64(graph.scaffold_id());
  writer->WriteFloatVector(graph.task_labels());
  const std::vector<uint8_t>& mask = graph.semantic_mask();
  writer->WriteString(
      std::string(reinterpret_cast<const char*>(mask.data()), mask.size()));
}

Result<Graph> ParseGraphRecord(BufferReader* reader) {
  const int64_t num_nodes = reader->ReadI64();
  const int64_t feat_dim = reader->ReadI64();
  if (!reader->ok() || num_nodes < 0 || num_nodes > kMaxRecordNodes ||
      feat_dim < 0 || num_nodes * feat_dim > kMaxRecordFeatureEntries) {
    return Status::InvalidArgument("corrupt graph record header");
  }
  Graph g(num_nodes, feat_dim);
  std::vector<float> feats = reader->ReadFloatVector();
  if (static_cast<int64_t>(feats.size()) != num_nodes * feat_dim) {
    return Status::InvalidArgument("corrupt graph record feature payload");
  }
  g.mutable_features() = std::move(feats);
  std::vector<int32_t> src = reader->ReadI32Vector();
  std::vector<int32_t> dst = reader->ReadI32Vector();
  if (!reader->ok() || src.size() != dst.size()) {
    return Status::InvalidArgument("corrupt graph record edge payload");
  }
  for (size_t e = 0; e < src.size(); ++e) {
    if (src[e] < 0 || src[e] >= num_nodes || dst[e] < 0 ||
        dst[e] >= num_nodes) {
      return Status::OutOfRange("graph record edge index outside graph");
    }
    g.AddUndirectedEdge(src[e], dst[e]);
  }
  g.set_label(static_cast<int>(reader->ReadI64()));
  g.set_scaffold_id(static_cast<int>(reader->ReadI64()));
  g.set_task_labels(reader->ReadFloatVector());
  const std::string mask = reader->ReadString();
  if (!reader->ok()) {
    return Status::InvalidArgument("corrupt graph record trailer");
  }
  if (!mask.empty()) {
    if (static_cast<int64_t>(mask.size()) != num_nodes) {
      return Status::InvalidArgument(
          "graph record semantic mask does not cover the node set");
    }
    g.set_semantic_mask(std::vector<uint8_t>(mask.begin(), mask.end()));
  }
  return g;
}

}  // namespace sgcl
