// GraphSource: the data-access abstraction every training/eval consumer
// reads graphs through. A source is a sequential, cursor-addressable
// stream of Graph records — indices 0..size()-1 — with batched random
// access via Fetch. Two implementations ship today:
//   * InMemorySource — zero-copy view over a GraphDataset (borrowed or
//     owned), preserving the exact semantics of the historical
//     `dataset.graph(i)` access path;
//   * ShardedGraphStore (data/shard_store.h) — out-of-core shards on
//     disk, decoded on demand with a bounded cache.
// Consumers hold batches as FetchedGraphs, which either borrows graph
// pointers (in-memory case) or pins the decoded shard that owns them, so
// pointers stay valid for the lifetime of the FetchedGraphs regardless
// of source internals.
#ifndef SGCL_GRAPH_GRAPH_SOURCE_H_
#define SGCL_GRAPH_GRAPH_SOURCE_H_

#include <deque>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/dataset.h"
#include "graph/graph.h"

namespace sgcl {

// A batch of graphs handed out by GraphSource::Fetch. Holds any mix of
// borrowed pointers (kept alive by `pins_` or by the source itself) and
// owned Graph values; `graphs()` exposes the batch uniformly as pointers
// in append order.
class FetchedGraphs {
 public:
  FetchedGraphs() = default;
  FetchedGraphs(FetchedGraphs&&) = default;
  FetchedGraphs& operator=(FetchedGraphs&&) = default;
  FetchedGraphs(const FetchedGraphs&) = delete;
  FetchedGraphs& operator=(const FetchedGraphs&) = delete;

  // Appends a graph owned by someone else. If the owner's lifetime is not
  // guaranteed to cover this batch (e.g. a cached shard), register a pin.
  void AppendBorrowed(const Graph* graph) {
    ptrs_.push_back(graph);
  }
  // Appends a graph owned by the batch itself.
  void AppendOwned(Graph graph) {
    owned_.push_back(std::move(graph));  // deque: stable element addresses
    ptrs_.push_back(&owned_.back());
  }
  // Keeps `pin` alive as long as the batch (shared decoded shards).
  void AddPin(std::shared_ptr<const void> pin) {
    pins_.push_back(std::move(pin));
  }

  size_t size() const { return ptrs_.size(); }
  bool empty() const { return ptrs_.empty(); }
  const Graph& graph(size_t i) const {
    SGCL_CHECK(i < ptrs_.size());
    return *ptrs_[i];
  }
  const std::vector<const Graph*>& graphs() const { return ptrs_; }

  void Clear() {
    ptrs_.clear();
    owned_.clear();
    pins_.clear();
  }

 private:
  std::vector<const Graph*> ptrs_;
  std::deque<Graph> owned_;
  std::vector<std::shared_ptr<const void>> pins_;
};

// A contiguous index range [begin, end) whose graphs decode together
// (one shard, for disk-backed sources). Locality hint for shuffling.
struct IndexRange {
  int64_t begin = 0;
  int64_t end = 0;
};

class GraphSource {
 public:
  virtual ~GraphSource() = default;

  virtual const std::string& name() const = 0;
  virtual int num_classes() const = 0;
  // >1 marks a multi-task binary-classification source.
  virtual int num_tasks() const = 0;
  virtual int64_t size() const = 0;

  // Feature dimensionality shared by every graph in the source.
  // FailedPrecondition on an empty source — there is no silent 0.
  [[nodiscard]] virtual Result<int64_t> FeatDim() const = 0;

  // Appends the graphs at `indices` to `out` in the given order.
  // OutOfRange on any bad index. Thread-safe: concurrent Fetch calls on
  // one source are allowed (the prefetch pipeline relies on this).
  [[nodiscard]] virtual Status Fetch(std::span<const int64_t> indices,
                                     FetchedGraphs* out) const = 0;

  // Stable fingerprint of the source's identity and content, recorded in
  // training checkpoints and re-checked on resume so a checkpoint is
  // never applied to different data. 0 means "unknown" (legacy
  // checkpoints skip the check).
  virtual uint64_t ContentFingerprint() const = 0;

  // Decode-locality hint: disjoint ranges covering [0, size()) such that
  // indices inside one range fetch together cheaply. A single range
  // (the default) means random access is uniform-cost.
  virtual std::vector<IndexRange> FetchBlocks() const {
    return {IndexRange{0, size()}};
  }

  // -- Helpers built on Fetch --

  // Single-task class labels of all graphs, fetched in bounded chunks.
  // FailedPrecondition on an empty source.
  [[nodiscard]] Result<std::vector<int>> Labels() const;

  // All graphs as one batch. Convenience for in-memory consumers (eval);
  // materializes the entire source, so do not call on huge stores.
  [[nodiscard]] Result<FetchedGraphs> FetchAll() const;
};

// GraphSource view over a GraphDataset. Fetch borrows pointers straight
// out of the dataset (no copies, no pins): with a borrowed dataset the
// caller guarantees the dataset outlives every batch, exactly as the old
// `dataset.graph(i)` contract did.
class InMemorySource : public GraphSource {
 public:
  // Borrowing view; `dataset` must outlive the source and its batches.
  explicit InMemorySource(const GraphDataset* dataset)
      : borrowed_(dataset), fingerprint_(Fingerprint(*dataset)) {}
  // Owning view (moves the dataset in).
  explicit InMemorySource(GraphDataset dataset)
      : owned_(std::move(dataset)), borrowed_(&owned_),
        fingerprint_(Fingerprint(owned_)) {}

  const std::string& name() const override { return borrowed_->name(); }
  int num_classes() const override { return borrowed_->num_classes(); }
  int num_tasks() const override { return borrowed_->num_tasks(); }
  int64_t size() const override { return borrowed_->size(); }
  [[nodiscard]] Result<int64_t> FeatDim() const override {
    return borrowed_->FeatDim();
  }
  [[nodiscard]] Status Fetch(std::span<const int64_t> indices,
                             FetchedGraphs* out) const override;
  uint64_t ContentFingerprint() const override;

  const GraphDataset& dataset() const { return *borrowed_; }

  // Cheap structural fingerprint (metadata + per-graph shape/label FNV);
  // computed once at construction so ContentFingerprint is race-free.
  static uint64_t Fingerprint(const GraphDataset& dataset);

 private:
  GraphDataset owned_;  // empty in the borrowing case
  const GraphDataset* borrowed_ = nullptr;
  uint64_t fingerprint_ = 0;
};

}  // namespace sgcl

#endif  // SGCL_GRAPH_GRAPH_SOURCE_H_
