// Disjoint-union batching of graphs for one-pass GNN training.
//
// Node features of all graphs are stacked into one [N_total, d] tensor;
// edge indices are shifted by per-graph node offsets; node_graph_ids maps
// each node back to its graph for pooling via segment ops.
#ifndef SGCL_GRAPH_GRAPH_BATCH_H_
#define SGCL_GRAPH_GRAPH_BATCH_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "tensor/tensor.h"

namespace sgcl {

struct GraphBatch {
  Tensor features;                     // [num_nodes, feat_dim], no grad
  std::vector<int32_t> edge_src;       // concatenated, offset-shifted
  std::vector<int32_t> edge_dst;
  // Optional per-edge weights [num_edges, 1] (may carry gradients, e.g.
  // AD-GCL's learnable edge dropper). Empty (numel 0) = unweighted.
  Tensor edge_weights;
  std::vector<int32_t> node_graph_ids; // [num_nodes] -> graph index
  std::vector<int64_t> node_offsets;   // [num_graphs + 1]
  int64_t num_graphs = 0;
  int64_t num_nodes = 0;
  int64_t feat_dim = 0;

  // Builds a batch; all graphs must share feat_dim. Graphs may be empty
  // (zero nodes) — they contribute an empty segment and pool to zeros.
  static GraphBatch FromGraphPtrs(const std::vector<const Graph*>& graphs);
  static GraphBatch FromGraphs(const std::vector<Graph>& graphs);

  // Per-node degree over the batched edge list.
  std::vector<int64_t> Degrees() const;
};

}  // namespace sgcl

#endif  // SGCL_GRAPH_GRAPH_BATCH_H_
