#include "graph/graph_source.h"

#include <algorithm>

#include "common/string_util.h"

namespace sgcl {
namespace {

// FNV-1a 64-bit over incremental words.
struct Fnv64 {
  uint64_t h = 0xcbf29ce484222325ULL;
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  }
  void Mix(const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
  }
};

}  // namespace

Result<std::vector<int>> GraphSource::Labels() const {
  if (size() == 0) {
    return Status::FailedPrecondition(
        StrFormat("source %s is empty: no labels", name().c_str()));
  }
  constexpr int64_t kChunk = 4096;
  std::vector<int> labels;
  labels.reserve(static_cast<size_t>(size()));
  std::vector<int64_t> indices;
  for (int64_t start = 0; start < size(); start += kChunk) {
    const int64_t end = std::min(size(), start + kChunk);
    indices.resize(static_cast<size_t>(end - start));
    for (int64_t i = start; i < end; ++i) {
      indices[static_cast<size_t>(i - start)] = i;
    }
    FetchedGraphs chunk;
    SGCL_RETURN_NOT_OK(Fetch(indices, &chunk));
    for (const Graph* g : chunk.graphs()) labels.push_back(g->label());
  }
  return labels;
}

Result<FetchedGraphs> GraphSource::FetchAll() const {
  std::vector<int64_t> indices(static_cast<size_t>(size()));
  for (int64_t i = 0; i < size(); ++i) indices[static_cast<size_t>(i)] = i;
  FetchedGraphs all;
  SGCL_RETURN_NOT_OK(Fetch(indices, &all));
  return all;
}

Status InMemorySource::Fetch(std::span<const int64_t> indices,
                             FetchedGraphs* out) const {
  for (int64_t i : indices) {
    if (i < 0 || i >= borrowed_->size()) {
      return Status::OutOfRange(
          StrFormat("index %lld outside source %s of size %lld",
                    static_cast<long long>(i), borrowed_->name().c_str(),
                    static_cast<long long>(borrowed_->size())));
    }
    out->AppendBorrowed(&borrowed_->graph(i));
  }
  return Status::OK();
}

uint64_t InMemorySource::ContentFingerprint() const { return fingerprint_; }

uint64_t InMemorySource::Fingerprint(const GraphDataset& dataset) {
  Fnv64 fnv;
  fnv.Mix(dataset.name());
  fnv.Mix(static_cast<uint64_t>(dataset.num_classes()));
  fnv.Mix(static_cast<uint64_t>(dataset.num_tasks()));
  fnv.Mix(static_cast<uint64_t>(dataset.size()));
  for (int64_t i = 0; i < dataset.size(); ++i) {
    const Graph& g = dataset.graph(i);
    fnv.Mix(static_cast<uint64_t>(g.num_nodes()));
    fnv.Mix(static_cast<uint64_t>(g.num_directed_edges()));
    fnv.Mix(static_cast<uint64_t>(static_cast<int64_t>(g.label())));
  }
  // Never collide with the "unknown" sentinel.
  return fnv.h == 0 ? 1 : fnv.h;
}

}  // namespace sgcl
