// Core graph data model.
//
// A Graph stores node features, an undirected edge list (materialized in
// both directions for message passing), an optional class label and/or
// multi-task labels, and — for synthetic datasets — a ground-truth mask of
// semantic (motif) nodes used to validate the Lipschitz generator.
#ifndef SGCL_GRAPH_GRAPH_H_
#define SGCL_GRAPH_GRAPH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace sgcl {

class Graph {
 public:
  Graph() = default;
  // Nodes start with zeroed features.
  Graph(int64_t num_nodes, int64_t feat_dim);

  int64_t num_nodes() const { return num_nodes_; }
  int64_t feat_dim() const { return feat_dim_; }
  // Directed edge count (2x the undirected count for simple graphs).
  int64_t num_directed_edges() const {
    return static_cast<int64_t>(edge_src_.size());
  }
  int64_t num_undirected_edges() const { return num_directed_edges() / 2; }

  const std::vector<float>& features() const { return features_; }
  std::vector<float>& mutable_features() { return features_; }
  float feature(int64_t node, int64_t j) const {
    SGCL_DCHECK(node >= 0 && node < num_nodes_ && j >= 0 && j < feat_dim_);
    return features_[node * feat_dim_ + j];
  }
  void set_feature(int64_t node, int64_t j, float v) {
    SGCL_DCHECK(node >= 0 && node < num_nodes_ && j >= 0 && j < feat_dim_);
    features_[node * feat_dim_ + j] = v;
  }

  const std::vector<int32_t>& edge_src() const { return edge_src_; }
  const std::vector<int32_t>& edge_dst() const { return edge_dst_; }

  // Appends `count` nodes with zeroed features; returns the index of the
  // first new node. Any semantic mask is extended with zeros.
  int64_t AddNodes(int64_t count);

  // Adds the undirected edge {a,b} (stored as both (a,b) and (b,a)).
  // Self-loops are stored once. No-op if the edge already exists.
  void AddUndirectedEdge(int64_t a, int64_t b);
  bool HasEdge(int64_t a, int64_t b) const;
  // Removes {a,b} if present; returns whether it was removed.
  bool RemoveUndirectedEdge(int64_t a, int64_t b);

  // Per-node degree (counting each incident undirected edge once,
  // self-loops once).
  std::vector<int64_t> Degrees() const;
  // Neighbors of `node` (deduplicated by construction).
  std::vector<int32_t> Neighbors(int64_t node) const;

  int label() const { return label_; }
  void set_label(int v) { label_ = v; }

  // Multi-task binary labels; -1 marks a missing label (MUV/Tox-style
  // sparsity). Empty when the dataset is single-task.
  const std::vector<float>& task_labels() const { return task_labels_; }
  void set_task_labels(std::vector<float> labels) {
    task_labels_ = std::move(labels);
  }

  // Ground-truth semantic-node flags for synthetic datasets (1 = the node
  // belongs to the planted, class-determining motif). Empty when unknown.
  const std::vector<uint8_t>& semantic_mask() const { return semantic_mask_; }
  void set_semantic_mask(std::vector<uint8_t> mask) {
    semantic_mask_ = std::move(mask);
  }

  // Scaffold (backbone) group id used by scaffold splits; -1 when unset.
  int scaffold_id() const { return scaffold_id_; }
  void set_scaffold_id(int id) { scaffold_id_ = id; }

  // Structural sanity checks (index ranges, feature sizing, paired edges).
  Status Validate() const;

  // The subgraph induced by nodes with keep[v] != 0, with features,
  // semantic mask and labels carried over. Nodes are renumbered compactly
  // preserving order.
  Graph InducedSubgraph(const std::vector<uint8_t>& keep) const;

 private:
  // Canonical key for the undirected edge {a,b}: packs (min,max) so lookup
  // is O(1) during construction of dense graphs.
  static int64_t EdgeKey(int64_t a, int64_t b) {
    const int64_t lo = a < b ? a : b;
    const int64_t hi = a < b ? b : a;
    return (lo << 32) | hi;
  }

  int64_t num_nodes_ = 0;
  int64_t feat_dim_ = 0;
  std::vector<float> features_;
  std::vector<int32_t> edge_src_;
  std::vector<int32_t> edge_dst_;
  std::unordered_set<int64_t> edge_set_;
  int label_ = -1;
  std::vector<float> task_labels_;
  std::vector<uint8_t> semantic_mask_;
  int scaffold_id_ = -1;
};

}  // namespace sgcl

#endif  // SGCL_GRAPH_GRAPH_H_
