#include "graph/graph_batch.h"

namespace sgcl {

GraphBatch GraphBatch::FromGraphPtrs(const std::vector<const Graph*>& graphs) {
  SGCL_CHECK(!graphs.empty());
  GraphBatch batch;
  batch.num_graphs = static_cast<int64_t>(graphs.size());
  batch.feat_dim = graphs[0]->feat_dim();
  int64_t total_nodes = 0;
  int64_t total_edges = 0;
  for (const Graph* g : graphs) {
    SGCL_CHECK(g != nullptr);
    SGCL_CHECK_EQ(g->feat_dim(), batch.feat_dim);
    total_nodes += g->num_nodes();
    total_edges += g->num_directed_edges();
  }
  batch.num_nodes = total_nodes;
  batch.node_offsets.reserve(graphs.size() + 1);
  batch.node_graph_ids.reserve(total_nodes);
  batch.edge_src.reserve(total_edges);
  batch.edge_dst.reserve(total_edges);
  std::vector<float> feats;
  feats.reserve(static_cast<size_t>(total_nodes * batch.feat_dim));
  int64_t offset = 0;
  batch.node_offsets.push_back(0);
  for (int64_t gi = 0; gi < batch.num_graphs; ++gi) {
    const Graph& g = *graphs[gi];
    feats.insert(feats.end(), g.features().begin(), g.features().end());
    for (int64_t v = 0; v < g.num_nodes(); ++v) {
      batch.node_graph_ids.push_back(static_cast<int32_t>(gi));
    }
    for (size_t r = 0; r < g.edge_src().size(); ++r) {
      batch.edge_src.push_back(static_cast<int32_t>(g.edge_src()[r] + offset));
      batch.edge_dst.push_back(static_cast<int32_t>(g.edge_dst()[r] + offset));
    }
    offset += g.num_nodes();
    batch.node_offsets.push_back(offset);
  }
  batch.features =
      Tensor::FromVector({total_nodes, batch.feat_dim}, std::move(feats));
  return batch;
}

GraphBatch GraphBatch::FromGraphs(const std::vector<Graph>& graphs) {
  std::vector<const Graph*> ptrs;
  ptrs.reserve(graphs.size());
  for (const Graph& g : graphs) ptrs.push_back(&g);
  return FromGraphPtrs(ptrs);
}

std::vector<int64_t> GraphBatch::Degrees() const {
  std::vector<int64_t> deg(static_cast<size_t>(num_nodes), 0);
  for (int32_t s : edge_src) ++deg[s];
  return deg;
}

}  // namespace sgcl
