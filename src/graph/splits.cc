#include "graph/splits.h"

#include <algorithm>
#include <map>

namespace sgcl {

std::vector<std::vector<int64_t>> KFoldIndices(int64_t n, int k, Rng* rng) {
  SGCL_CHECK_GT(k, 1);
  SGCL_CHECK_GE(n, k);
  SGCL_CHECK(rng != nullptr);
  std::vector<int64_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = i;
  rng->Shuffle(&perm);
  std::vector<std::vector<int64_t>> folds(k);
  for (int64_t i = 0; i < n; ++i) folds[i % k].push_back(perm[i]);
  return folds;
}

std::vector<std::vector<int64_t>> StratifiedKFoldIndices(
    const std::vector<int>& labels, int k, Rng* rng) {
  SGCL_CHECK_GT(k, 1);
  SGCL_CHECK(rng != nullptr);
  std::map<int, std::vector<int64_t>> by_class;
  for (size_t i = 0; i < labels.size(); ++i) {
    SGCL_CHECK_GE(labels[i], 0);
    by_class[labels[i]].push_back(static_cast<int64_t>(i));
  }
  std::vector<std::vector<int64_t>> folds(k);
  // Round-robin each class's shuffled members across folds, rotating the
  // starting fold so small classes do not all land in fold 0.
  int64_t start = 0;
  for (auto& [cls, members] : by_class) {
    (void)cls;
    rng->Shuffle(&members);
    for (size_t i = 0; i < members.size(); ++i) {
      folds[(start + i) % k].push_back(members[i]);
    }
    start += static_cast<int64_t>(members.size());
  }
  return folds;
}

HoldoutSplit TrainTestSplit(int64_t n, double test_fraction, Rng* rng) {
  SGCL_CHECK_GT(n, 0);
  SGCL_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  SGCL_CHECK(rng != nullptr);
  std::vector<int64_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = i;
  rng->Shuffle(&perm);
  int64_t test_n = static_cast<int64_t>(test_fraction * static_cast<double>(n));
  test_n = std::clamp<int64_t>(test_n, 1, n - 1);
  HoldoutSplit split;
  split.test.assign(perm.begin(), perm.begin() + test_n);
  split.train.assign(perm.begin() + test_n, perm.end());
  return split;
}

ThreeWaySplit ScaffoldSplit(const GraphDataset& dataset, double train_fraction,
                            double valid_fraction) {
  SGCL_CHECK(train_fraction > 0.0 && valid_fraction >= 0.0 &&
             train_fraction + valid_fraction < 1.0);
  // Group indices by scaffold id; ungrouped graphs become singletons.
  std::map<int, std::vector<int64_t>> groups;
  int next_singleton = -2;  // negative ids below -1 for singletons
  for (int64_t i = 0; i < dataset.size(); ++i) {
    int id = dataset.graph(i).scaffold_id();
    if (id < 0) id = next_singleton--;
    groups[id].push_back(i);
  }
  std::vector<std::vector<int64_t>> ordered;
  ordered.reserve(groups.size());
  for (auto& [id, members] : groups) {
    (void)id;
    ordered.push_back(std::move(members));
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.front() < b.front();  // deterministic tiebreak
            });
  const double n = static_cast<double>(dataset.size());
  const int64_t train_cap = static_cast<int64_t>(train_fraction * n);
  const int64_t valid_cap =
      static_cast<int64_t>((train_fraction + valid_fraction) * n);
  ThreeWaySplit split;
  int64_t placed = 0;
  for (const auto& group : ordered) {
    auto* bucket = placed < train_cap   ? &split.train
                   : placed < valid_cap ? &split.valid
                                        : &split.test;
    bucket->insert(bucket->end(), group.begin(), group.end());
    placed += static_cast<int64_t>(group.size());
  }
  return split;
}

std::vector<int64_t> LabelRateSubset(const std::vector<int>& labels,
                                     double rate, Rng* rng) {
  SGCL_CHECK(rate > 0.0 && rate <= 1.0);
  SGCL_CHECK(rng != nullptr);
  std::map<int, std::vector<int64_t>> by_class;
  for (size_t i = 0; i < labels.size(); ++i) {
    by_class[labels[i]].push_back(static_cast<int64_t>(i));
  }
  std::vector<int64_t> subset;
  for (auto& [cls, members] : by_class) {
    (void)cls;
    rng->Shuffle(&members);
    int64_t take = static_cast<int64_t>(
        rate * static_cast<double>(members.size()) + 0.5);
    take = std::clamp<int64_t>(take, 1,
                               static_cast<int64_t>(members.size()));
    subset.insert(subset.end(), members.begin(), members.begin() + take);
  }
  std::sort(subset.begin(), subset.end());
  return subset;
}

}  // namespace sgcl
