#include "comms/channel.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace sgcl {
namespace {

// Recv chunks this large keep the per-frame syscall count low without
// ballooning the per-connection buffer.
constexpr size_t kRecvChunk = 64 * 1024;
// Message marker IsPeerClosed keys on; kept in one place so the
// coordinator's EOF detection can never drift from the producer.
constexpr const char* kPeerClosedMessage = "comms peer closed connection";
// Marker IsIoTimeout keys on, embedded in every deadline-expiry Status.
constexpr const char* kTimeoutMarker = "timed out after";

void ApplyIoTimeout(int fd, int timeout_ms) {
  if (fd < 0 || timeout_ms <= 0) return;
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Counter* BytesSentCounter() {
  static Counter* const counter =
      MetricsRegistry::Global().GetCounter("comms/bytes_sent");
  return counter;
}

Counter* BytesRecvCounter() {
  static Counter* const counter =
      MetricsRegistry::Global().GetCounter("comms/bytes_recv");
  return counter;
}

// Shared fault-point gate: translates an armed fault at `point` into
// the Status the caller propagates, or nullopt to proceed. kShortWrite
// is only meaningful at send points; elsewhere it degrades to kError.
std::optional<Status> CheckFault(const std::string& point) {
  const auto fault = FaultInjector::Global().Check(point);
  if (!fault.has_value()) return std::nullopt;
  if (*fault == FaultKind::kCrash) return SimulatedCrash(point);
  return Status::Unavailable(
      StrFormat("injected fault at %s", point.c_str()));
}

}  // namespace

bool IsPeerClosed(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message().find(kPeerClosedMessage) != std::string::npos;
}

bool IsIoTimeout(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message().find(kTimeoutMarker) != std::string::npos;
}

FramedChannel::FramedChannel(std::string fault_prefix)
    : fault_prefix_(std::move(fault_prefix)) {}

FramedChannel::~FramedChannel() { Disconnect(); }

Status FramedChannel::Connect(int port) {
  if (connected()) return Status::FailedPrecondition("already connected");
  const std::string point = fault_prefix_ + "/connect";
  if (auto fault = FaultInjector::Global().Check(point); fault.has_value()) {
    if (*fault == FaultKind::kCrash) return SimulatedCrash(point);
    return Status::Unavailable(
        StrFormat("injected fault at %s", point.c_str()));
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    close(fd);
    return Status::Unavailable(StrFormat("connect 127.0.0.1:%d: %s", port,
                                         std::strerror(err)));
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_.store(fd, std::memory_order_release);
  ApplyIoTimeout(fd, timeout_ms_);
  return Status::OK();
}

void FramedChannel::Adopt(int fd) {
  Disconnect();
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_.store(fd, std::memory_order_release);
  ApplyIoTimeout(fd, timeout_ms_);
}

void FramedChannel::SetIoTimeout(int timeout_ms) {
  timeout_ms_ = timeout_ms;
  ApplyIoTimeout(fd(), timeout_ms_);
}

Status FramedChannel::Send(uint32_t type, std::string_view payload) {
  if (!connected()) return Status::FailedPrecondition("channel not connected");
  const std::string frame = EncodeFrame(type, payload);
  const std::string point = fault_prefix_ + "/send";
  size_t sent = 0;
  while (sent < frame.size()) {
    if (auto fault = FaultInjector::Global().Check(point);
        fault.has_value()) {
      if (*fault == FaultKind::kShortWrite && sent == 0) {
        // Torn-write model: push a prefix of the frame onto the wire so
        // the peer sees a truncated/corrupt frame, then fail locally.
        const size_t torn = frame.size() / 2;
        size_t torn_sent = 0;
        while (torn_sent < torn) {
          const ssize_t n = send(fd(), frame.data() + torn_sent,
                                 torn - torn_sent, MSG_NOSIGNAL);
          if (n <= 0) break;
          torn_sent += static_cast<size_t>(n);
        }
        BytesSentCounter()->Increment(static_cast<int64_t>(torn_sent));
        return Status::Unavailable(
            StrFormat("injected short write at %s (%zu of %zu bytes)",
                      point.c_str(), torn_sent, frame.size()));
      }
      if (*fault == FaultKind::kCrash) return SimulatedCrash(point);
      return Status::Unavailable(
          StrFormat("injected fault at %s", point.c_str()));
    }
    const ssize_t n =
        send(fd(), frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable(
            StrFormat("comms send of %s frame timed out after %d ms",
                      FrameTypeToString(type), timeout_ms_));
      }
      return Status::Unavailable(StrFormat("comms send failed: %s",
                                           std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
    BytesSentCounter()->Increment(n);
  }
  return Status::OK();
}

Result<Frame> FramedChannel::Recv() {
  if (!connected()) return Status::FailedPrecondition("channel not connected");
  const std::string recv_point = fault_prefix_ + "/recv";
  const std::string decode_point = fault_prefix_ + "/frame_decode";
  Frame frame;
  while (true) {
    if (!recv_buffer_.empty()) {
      if (auto fault = CheckFault(decode_point); fault.has_value()) {
        return *fault;
      }
      SGCL_ASSIGN_OR_RETURN(const bool complete,
                            TryDecodeFrame(&recv_buffer_, &frame));
      if (complete) return frame;
    }
    if (auto fault = CheckFault(recv_point); fault.has_value()) {
      return *fault;
    }
    char chunk[kRecvChunk];
    const ssize_t n = recv(fd(), chunk, sizeof(chunk), 0);
    if (n == 0) return Status::Unavailable(kPeerClosedMessage);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::Unavailable(
            StrFormat("comms recv timed out after %d ms", timeout_ms_));
      }
      if (errno == ECONNRESET) return Status::Unavailable(kPeerClosedMessage);
      return Status::Unavailable(StrFormat("comms recv failed: %s",
                                           std::strerror(errno)));
    }
    recv_buffer_.append(chunk, static_cast<size_t>(n));
    BytesRecvCounter()->Increment(n);
  }
}

void FramedChannel::Disconnect() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
  recv_buffer_.clear();
}

void FramedChannel::ShutdownWake() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) shutdown(fd, SHUT_RDWR);
}

FrameListener::FrameListener(std::string fault_prefix)
    : fault_prefix_(std::move(fault_prefix)) {}

FrameListener::~FrameListener() { Disconnect(); }

Status FrameListener::Listen(int port) {
  if (listening()) return Status::FailedPrecondition("already listening");
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket: %s", std::strerror(errno)));
  }
  // SO_REUSEADDR so a restarted coordinator can rebind a port still in
  // TIME_WAIT; with ephemeral ports (the only mode tests use) it is
  // belt-and-suspenders against ctest -j collisions.
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    close(fd);
    return Status::Internal(StrFormat("bind 127.0.0.1:%d: %s", port,
                                      std::strerror(err)));
  }
  if (listen(fd, 64) < 0) {
    const int err = errno;
    close(fd);
    return Status::Internal(StrFormat("listen: %s", std::strerror(err)));
  }
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                  &bound_len) < 0) {
    const int err = errno;
    close(fd);
    return Status::Internal(StrFormat("getsockname: %s", std::strerror(err)));
  }
  port_ = ntohs(bound.sin_port);
  fd_.store(fd, std::memory_order_release);
  return Status::OK();
}

Result<int> FrameListener::AcceptFd() {
  const int listen_fd = fd_.load(std::memory_order_acquire);
  if (listen_fd < 0) return Status::FailedPrecondition("listener is closed");
  if (auto fault = CheckFault(fault_prefix_ + "/accept"); fault.has_value()) {
    return *fault;
  }
  const int client = accept(listen_fd, nullptr, nullptr);
  if (client < 0) {
    return Status::Unavailable(StrFormat("accept: %s", std::strerror(errno)));
  }
  return client;
}

void FrameListener::Disconnect() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() wakes a thread blocked in accept(2) on Linux; pairing
    // it with close keeps the wake robust (http_server.cc uses the same
    // double-tap for its accept loop).
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
}

}  // namespace sgcl
