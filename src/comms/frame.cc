#include "comms/frame.h"

#include <cstring>

#include "common/crc32.h"
#include "common/string_util.h"

namespace sgcl {
namespace {

void AppendU32(std::string* out, uint32_t v) {
  char bytes[4];
  std::memcpy(bytes, &v, sizeof(v));
  out->append(bytes, sizeof(bytes));
}

uint32_t ReadU32At(const std::string& buf, size_t offset) {
  uint32_t v = 0;
  std::memcpy(&v, buf.data() + offset, sizeof(v));
  return v;
}

// The frame CRC chains over the little-endian type bytes and then the
// payload, so a corrupted type field is caught by the same check that
// guards the payload (magic and length have their own structural
// checks).
uint32_t FrameCrc(uint32_t type, const char* payload, size_t size) {
  char type_bytes[4];
  std::memcpy(type_bytes, &type, sizeof(type));
  return Crc32(payload, size, Crc32(type_bytes, sizeof(type_bytes)));
}

}  // namespace

const char* FrameTypeToString(uint32_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
      return "HELLO";
    case FrameType::kWelcome:
      return "WELCOME";
    case FrameType::kReject:
      return "REJECT";
    case FrameType::kLeaf:
      return "LEAF";
    case FrameType::kRoundRequest:
      return "ROUND_REQUEST";
    case FrameType::kRoundResult:
      return "ROUND_RESULT";
    case FrameType::kGoodbye:
      return "GOODBYE";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(uint32_t type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(&out, kFrameMagic);
  AppendU32(&out, type);
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  AppendU32(&out, FrameCrc(type, payload.data(), payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

Result<bool> TryDecodeFrame(std::string* buffer, Frame* out) {
  // The magic is checkable as soon as its bytes arrive — rejecting a
  // non-SGCF stream early beats waiting for a full bogus header.
  if (buffer->size() >= 4) {
    const uint32_t magic = ReadU32At(*buffer, 0);
    if (magic != kFrameMagic) {
      return Status::InvalidArgument(
          StrFormat("comms frame has bad magic %08x (want %08x)", magic,
                    kFrameMagic));
    }
  }
  if (buffer->size() < kFrameHeaderBytes) return false;
  const uint32_t type = ReadU32At(*buffer, 4);
  const uint32_t payload_len = ReadU32At(*buffer, 8);
  const uint32_t want_crc = ReadU32At(*buffer, 12);
  if (payload_len > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrFormat("comms frame declares %u payload bytes (cap %u)",
                  payload_len, kMaxFramePayload));
  }
  if (buffer->size() < kFrameHeaderBytes + payload_len) return false;
  const uint32_t got_crc =
      FrameCrc(type, buffer->data() + kFrameHeaderBytes,
               static_cast<size_t>(payload_len));
  if (got_crc != want_crc) {
    return Status::InvalidArgument(
        StrFormat("comms %s frame CRC mismatch: header %08x, "
                  "computed %08x",
                  FrameTypeToString(type), want_crc, got_crc));
  }
  out->type = type;
  out->payload.assign(buffer->data() + kFrameHeaderBytes, payload_len);
  buffer->erase(0, kFrameHeaderBytes + payload_len);
  return true;
}

}  // namespace sgcl
