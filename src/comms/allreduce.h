// Deterministic gradient all-reduce for data-parallel pretraining.
//
// Topology: a star rooted at rank 0's process. The coordinator owns the
// reduction; every worker (rank 0's own trainer included) is a client.
// Each optimizer round covers `accum` consecutive global batches
// ("leaves", data/rank_assign.h); a worker computes the leaves it owns,
// submits each as a LEAF frame, then blocks in GetRound until the
// coordinator has every leaf of the round and has reduced them.
//
// Determinism argument: the coordinator sums leaf gradients in fixed
// slot order 0..L-1 (and leaf losses in the same order, as doubles)
// regardless of arrival order or worker count, and every worker applies
// the same broadcast sums. Float addition is deterministic for a fixed
// operand order, so the reduced round — and therefore every parameter
// update and every epoch loss — is a pure function of the schedule, not
// of N, timing, or the network. --workers=8 is bitwise --workers=1.
//
// Elastic rejoin: a worker that dies and restarts from its checkpoint
// re-handshakes with HELLO carrying the same schedule fields; the
// coordinator validates them (REJECT on any mismatch) and answers
// WELCOME with `completed_rounds`. The rejoiner replays rounds it
// missed from the coordinator's bounded result cache (GetRound on a
// completed round answers immediately) instead of recomputing, applies
// them, and is back in lockstep. Leaves re-submitted for rounds that
// already completed — or slots already present — are dropped
// first-write-wins; a deterministic recompute is bitwise-equal anyway.
//
// Liveness: worker death shows up as EOF on its connection (the handler
// marks the rank disconnected in /status); surviving workers simply
// block in GetRound — bounded by their own I/O deadline — until the
// rejoiner's leaves complete the round. The coordinator's accept loop
// deliberately has no crash-fault injection point of its own beyond
// FrameListener's catalogued "comms_srv/accept", and coordinator-side
// channels use the "comms_srv" fault prefix so tests can kill workers
// ("comms/*") without also wedging the server.
#ifndef SGCL_COMMS_ALLREDUCE_H_
#define SGCL_COMMS_ALLREDUCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comms/channel.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "common/thread_annotations.h"
#include "data/rank_assign.h"

namespace sgcl {

// Everything that must agree between coordinator and every worker for
// their training tapes to be the same tape. Sent in full with HELLO and
// validated field-by-field; any mismatch is a REJECT.
struct AllReduceSchedule {
  uint32_t world_size = 1;
  uint32_t accum = 1;              // W: leaves (global batches) per round
  uint32_t epochs = 0;
  uint64_t grad_dim = 0;           // flattened parameter-gradient length
  uint64_t batches_per_epoch = 0;  // K (core PretrainBatchesPerEpoch)
  uint64_t config_fingerprint = 0;
  uint64_t source_fingerprint = 0;
  uint64_t run_seed = 0;           // the run's original trainer seed

  uint64_t rounds_per_epoch() const {
    return RoundsPerEpoch(batches_per_epoch, accum);
  }
  uint64_t total_rounds() const {
    return rounds_per_epoch() * epochs;
  }
  // Leaves in global round `round` (short for epoch-tail rounds).
  uint32_t leaves_in_round(uint64_t round) const {
    return LeavesInRound(batches_per_epoch, accum,
                         rounds_per_epoch() == 0
                             ? 0
                             : round % rounds_per_epoch());
  }
  // "field=value, ..." difference listing against `other`, empty when
  // equal; the REJECT message a mismatched worker sees.
  std::string DescribeMismatch(const AllReduceSchedule& other) const;
};

// One reduced round as broadcast to workers. grad_sum is the slot-order
// sum of leaf gradients (callers divide by leaf_count for the mean);
// loss_sum is the slot-order double sum of leaf losses.
struct ReducedRound {
  uint64_t round = 0;
  uint32_t leaf_count = 0;
  double loss_sum = 0.0;
  std::vector<float> grad_sum;
};

struct AllReduceCoordinatorOptions {
  AllReduceSchedule schedule;
  // Completed rounds kept for rejoin catch-up; once evicted a round is
  // gone and a worker checkpointed before it cannot rejoin (GetRound
  // then fails FailedPrecondition). Size this from the checkpoint
  // cadence: every round since a worker's latest checkpoint must fit.
  int cache_rounds = 64;
  // recv deadline on coordinator-side connections. Timeouts are not
  // errors (an idle worker blocked elsewhere sends nothing); the
  // handler just re-checks for shutdown.
  int io_timeout_ms = 1000;
  // Optional live per-worker rows for /status; must outlive Stop().
  RunStatusBoard* status_board = nullptr;
};

// The reduction server. Runs an accept thread plus one handler thread
// per connection inside rank 0's process.
class AllReduceCoordinator {
 public:
  explicit AllReduceCoordinator(const AllReduceCoordinatorOptions& options);
  ~AllReduceCoordinator();

  AllReduceCoordinator(const AllReduceCoordinator&) = delete;
  AllReduceCoordinator& operator=(const AllReduceCoordinator&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral, see port()) and starts
  // accepting workers.
  Status Start(int port);

  // Wakes every blocked handler, joins all threads, closes all
  // connections. Idempotent; the destructor calls it.
  void Stop();

  int port() const { return listener_.port(); }

  // Rounds [0, completed_rounds()) are reduced (rounds always complete
  // in order — a worker cannot reach round r+1 before applying r).
  uint64_t completed_rounds() const;

  // Blocks until `count` GOODBYE frames have arrived or `timeout_ms`
  // elapses; true when the goodbyes all landed. Rank 0 calls this after
  // its own training returns so it never tears the server down under
  // workers still draining their last rounds. (cv-wait: the analysis
  // cannot see through std::condition_variable, like serve/batcher.h.)
  [[nodiscard]] bool WaitForGoodbyes(int count, int timeout_ms)
      SGCL_NO_THREAD_SAFETY_ANALYSIS;

 private:
  struct PendingRound {
    std::vector<std::vector<float>> leaf_grads;  // by slot
    std::vector<double> leaf_losses;             // by slot
    std::vector<bool> present;                   // by slot
    uint32_t received = 0;
  };

  void AcceptLoop();
  void HandleConnection(FramedChannel* channel);
  // Protocol steps (called from handler threads). HandleHello returns
  // the validated rank, or an error after sending REJECT itself.
  Result<uint32_t> HandleHello(FramedChannel* channel, const Frame& frame);
  Status HandleLeaf(const Frame& frame, uint32_t rank);
  Status HandleRoundRequest(FramedChannel* channel, const Frame& frame)
      SGCL_NO_THREAD_SAFETY_ANALYSIS;
  void PublishWorkerRow(uint32_t rank, bool connected)
      SGCL_REQUIRES(mu_);

  const AllReduceCoordinatorOptions options_;
  FrameListener listener_{"comms_srv"};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  // Handler threads and their channels, appended by the accept loop and
  // reaped only in Stop (a finished handler leaves its closed channel
  // behind; rejoins are rare and connections are cheap).
  std::vector<std::thread> handler_threads_ SGCL_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<FramedChannel>> channels_ SGCL_GUARDED_BY(mu_);
  std::map<uint64_t, PendingRound> pending_ SGCL_GUARDED_BY(mu_);
  std::map<uint64_t, ReducedRound> completed_ SGCL_GUARDED_BY(mu_);
  uint64_t completed_next_ SGCL_GUARDED_BY(mu_) = 0;
  int goodbyes_ SGCL_GUARDED_BY(mu_) = 0;
  // Live per-rank stats mirrored into options_.status_board.
  struct WorkerStat {
    bool connected = false;
    int64_t last_round = -1;
    int64_t leaves = 0;
  };
  std::map<uint32_t, WorkerStat> workers_ SGCL_GUARDED_BY(mu_);
};

// What a worker announces when (re)joining.
struct WorkerHello {
  uint32_t rank = 0;
  AllReduceSchedule schedule;
  // First round this worker will submit leaves for (its checkpoint
  // cursor); informational, logged by the coordinator.
  uint64_t next_round = 0;
};

// The coordinator's answer to an accepted HELLO.
struct JoinReply {
  // Rounds [0, completed_rounds) are already reduced; a rejoiner
  // fetches its missed rounds from the cache instead of recomputing.
  uint64_t completed_rounds = 0;
};

// Worker-side protocol driver: one connection, used from one thread.
class AllReduceClient {
 public:
  AllReduceClient() = default;

  // Connects to 127.0.0.1:`port`, retrying (the coordinator may still
  // be binding) until `connect_deadline_ms` elapses, then handshakes.
  // `io_timeout_ms` is the per-operation deadline afterwards — it
  // bounds how long GetRound waits for stragglers, so it must cover a
  // worker's restart-and-rejoin time. FailedPrecondition when the
  // coordinator rejects the handshake (schedule mismatch — fatal).
  Result<JoinReply> Join(int port, const WorkerHello& hello,
                         int connect_deadline_ms, int io_timeout_ms);

  // Fire-and-forget upload of one computed leaf.
  Status SubmitLeaf(uint64_t round, uint32_t slot, double loss,
                    const std::vector<float>& grad);

  // Blocks until `round` is reduced and returns it. FailedPrecondition
  // when the round was evicted from the coordinator's cache (the
  // checkpoint cadence outran cache_rounds), Unavailable on timeout or
  // a dead coordinator.
  Result<ReducedRound> GetRound(uint64_t round);

  // Clean shutdown notice; the coordinator counts these for
  // WaitForGoodbyes.
  Status Goodbye(uint32_t rank);

  void Disconnect() { channel_.Disconnect(); }
  [[nodiscard]] bool connected() const { return channel_.connected(); }

 private:
  FramedChannel channel_;  // default "comms" fault prefix
};

}  // namespace sgcl

#endif  // SGCL_COMMS_ALLREDUCE_H_
