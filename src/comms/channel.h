// Blocking framed-TCP transport over loopback: a FramedChannel sends
// and receives comms/frame.h frames on one connected socket, and a
// FrameListener accepts connections for the coordinator side.
//
// Socket discipline follows common/http_server.cc: loopback-only bind
// with SO_REUSEADDR and kernel-assigned ephemeral ports (port 0), recv
// and send deadlines via SO_RCVTIMEO/SO_SNDTIMEO so a wedged peer can
// never hang a thread forever, full-buffer send loops tolerating short
// writes, and shutdown()-based wakeups for threads blocked in accept.
//
// Every syscall the protocol depends on is threaded through the fault
// injector (common/fault.h) under this channel's configurable point
// prefix — "comms" for workers, "comms_srv" for coordinator-side
// channels — so tests can kill either side of the wire independently:
//   <prefix>/connect       before connect(2)
//   <prefix>/send          before each send(2) batch (kShortWrite
//                          transmits a prefix, then fails: torn frame)
//   <prefix>/recv          before each recv(2)
//   <prefix>/frame_decode  after bytes arrive, before CRC validation
//   <prefix>/accept        before accept(2) (FrameListener)
// A kCrash fault unwinds with the SimulatedCrash sentinel; the channel
// closes its socket on destruction, so to the peer a crashed thread is
// indistinguishable from a killed process (EOF).
#ifndef SGCL_COMMS_CHANNEL_H_
#define SGCL_COMMS_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "comms/frame.h"
#include "common/status.h"

namespace sgcl {

// True when `status` is the error a blocked Recv returns because the
// peer closed the connection (as opposed to timeout or corruption).
[[nodiscard]] bool IsPeerClosed(const Status& status);

// True when `status` is a Recv/Send deadline expiry (SetIoTimeout). The
// coordinator treats these as "idle worker", not as failures.
[[nodiscard]] bool IsIoTimeout(const Status& status);

class FramedChannel {
 public:
  // `fault_prefix` names the injector channel for every fault point
  // this object consults (see file comment).
  explicit FramedChannel(std::string fault_prefix = "comms");
  ~FramedChannel();

  FramedChannel(const FramedChannel&) = delete;
  FramedChannel& operator=(const FramedChannel&) = delete;

  // Connects to 127.0.0.1:`port`. Unavailable when the peer is not
  // listening (callers that expect a coordinator mid-start retry).
  Status Connect(int port);

  // Wraps an already-connected socket (the listener's accepted fd);
  // takes ownership.
  void Adopt(int fd);

  // recv()/send() deadline for this connection; also applied by
  // Connect/Adopt with the previously-set value. <= 0 means no deadline.
  void SetIoTimeout(int timeout_ms);

  // Sends one frame, looping over short writes. DeadlineExceeded-style
  // Unavailable on a send timeout, Internal on socket errors.
  Status Send(uint32_t type, std::string_view payload);
  Status Send(FrameType type, std::string_view payload) {
    return Send(static_cast<uint32_t>(type), payload);
  }

  // Blocks until one complete frame arrives. Unavailable("...timed
  // out...") on the io deadline, IsPeerClosed-true Unavailable on EOF,
  // InvalidArgument on a corrupt frame.
  Result<Frame> Recv();

  // Idempotent; also wakes a thread blocked in Recv on this channel.
  // Only the owning thread may call Disconnect (it invalidates fd_).
  // Void by design: best-effort teardown, unlike the fallible
  // common/io.h Close().
  void Disconnect();

  // Thread-safe wake from another thread: half-closes the socket so the
  // owner blocked in Recv returns a peer-closed error, without racing fd
  // ownership (the owner still runs Disconnect()/the destructor).
  void ShutdownWake();

  [[nodiscard]] bool connected() const {
    return fd_.load(std::memory_order_acquire) >= 0;
  }

 private:
  int fd() const { return fd_.load(std::memory_order_acquire); }

  std::string fault_prefix_;
  // Atomic so ShutdownWake (another thread) can read the fd while the
  // owner is blocked in Recv; only the owner ever stores to it.
  std::atomic<int> fd_{-1};
  int timeout_ms_ = 0;
  std::string recv_buffer_;
};

class FrameListener {
 public:
  explicit FrameListener(std::string fault_prefix = "comms");
  ~FrameListener();

  FrameListener(const FrameListener&) = delete;
  FrameListener& operator=(const FrameListener&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral, see port()) with
  // SO_REUSEADDR and starts listening.
  Status Listen(int port);

  // Blocks until a connection arrives; returns the connected fd (the
  // caller Adopt()s it into a FramedChannel). Unavailable once Disconnect()
  // ran or on accept errors.
  Result<int> AcceptFd();

  // Wakes any thread blocked in AcceptFd and closes the listen socket.
  void Disconnect();

  int port() const { return port_; }
  [[nodiscard]] bool listening() const {
    return fd_.load(std::memory_order_acquire) >= 0;
  }

 private:
  std::string fault_prefix_;
  // Atomic: Close (another thread) wakes a blocked AcceptFd.
  std::atomic<int> fd_{-1};
  int port_ = 0;
};

}  // namespace sgcl

#endif  // SGCL_COMMS_CHANNEL_H_
