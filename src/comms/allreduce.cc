#include "comms/allreduce.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace sgcl {
namespace {

void WriteSchedule(BufferWriter* w, const AllReduceSchedule& s) {
  w->WriteU32(s.world_size);
  w->WriteU32(s.accum);
  w->WriteU32(s.epochs);
  w->WriteU64(s.grad_dim);
  w->WriteU64(s.batches_per_epoch);
  w->WriteU64(s.config_fingerprint);
  w->WriteU64(s.source_fingerprint);
  w->WriteU64(s.run_seed);
}

AllReduceSchedule ReadSchedule(BufferReader* r) {
  AllReduceSchedule s;
  s.world_size = r->ReadU32();
  s.accum = r->ReadU32();
  s.epochs = r->ReadU32();
  s.grad_dim = r->ReadU64();
  s.batches_per_epoch = r->ReadU64();
  s.config_fingerprint = r->ReadU64();
  s.source_fingerprint = r->ReadU64();
  s.run_seed = r->ReadU64();
  return s;
}

Counter* RoundsCounter() {
  static Counter* const counter =
      MetricsRegistry::Global().GetCounter("comms/rounds");
  return counter;
}

}  // namespace

std::string AllReduceSchedule::DescribeMismatch(
    const AllReduceSchedule& other) const {
  std::string diff;
  const auto field = [&](const char* name, uint64_t mine, uint64_t theirs) {
    if (mine == theirs) return;
    if (!diff.empty()) diff += ", ";
    diff += StrFormat("%s coordinator=%llu worker=%llu", name,
                      static_cast<unsigned long long>(mine),
                      static_cast<unsigned long long>(theirs));
  };
  field("world_size", world_size, other.world_size);
  field("accum", accum, other.accum);
  field("epochs", epochs, other.epochs);
  field("grad_dim", grad_dim, other.grad_dim);
  field("batches_per_epoch", batches_per_epoch, other.batches_per_epoch);
  field("config_fingerprint", config_fingerprint, other.config_fingerprint);
  field("source_fingerprint", source_fingerprint, other.source_fingerprint);
  field("run_seed", run_seed, other.run_seed);
  return diff;
}

AllReduceCoordinator::AllReduceCoordinator(
    const AllReduceCoordinatorOptions& options)
    : options_(options) {}

AllReduceCoordinator::~AllReduceCoordinator() { Stop(); }

Status AllReduceCoordinator::Start(int port) {
  if (accept_thread_.joinable()) {
    return Status::FailedPrecondition("coordinator already started");
  }
  SGCL_RETURN_NOT_OK(listener_.Listen(port));
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  SGCL_LOG(INFO) << "all-reduce coordinator listening on 127.0.0.1:"
                 << listener_.port() << " (world " << options_.schedule.world_size
                 << ", accum " << options_.schedule.accum << ", "
                 << options_.schedule.total_rounds() << " rounds)";
  return Status::OK();
}

void AllReduceCoordinator::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.Disconnect();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& channel : channels_) channel->ShutdownWake();
    cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop is gone, so the channel/thread lists are final;
  // wake any connection it registered after the first sweep, then join.
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& channel : channels_) channel->ShutdownWake();
    cv_.notify_all();
    handlers = std::move(handler_threads_);
    handler_threads_.clear();
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
}

uint64_t AllReduceCoordinator::completed_rounds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_next_;
}

bool AllReduceCoordinator::WaitForGoodbyes(int count, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [this, count] {
    return goodbyes_ >= count || stopping_.load(std::memory_order_relaxed);
  });
  return goodbyes_ >= count;
}

void AllReduceCoordinator::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<int> fd = listener_.AcceptFd();
    if (!fd.ok()) {
      if (stopping_.load(std::memory_order_relaxed)) return;
      if (IsSimulatedCrash(fd.status())) {
        // The accept loop is the one place a simulated crash must not
        // wedge the cluster (nothing restarts the coordinator), so it
        // is logged and survived; tests target worker-side points.
        SGCL_LOG(WARNING) << "coordinator accept: " << fd.status().ToString();
        continue;
      }
      SGCL_LOG(WARNING) << "coordinator accept failed: "
                     << fd.status().ToString();
      continue;
    }
    auto channel = std::make_unique<FramedChannel>("comms_srv");
    channel->Adopt(*fd);
    channel->SetIoTimeout(options_.io_timeout_ms);
    FramedChannel* raw = channel.get();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) return;
    channels_.push_back(std::move(channel));
    handler_threads_.emplace_back(
        [this, raw] { HandleConnection(raw); });
  }
}

void AllReduceCoordinator::HandleConnection(FramedChannel* channel) {
  uint32_t rank = 0;
  bool greeted = false;
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<Frame> frame = channel->Recv();
    if (!frame.ok()) {
      if (IsIoTimeout(frame.status())) continue;  // idle worker
      if (!IsPeerClosed(frame.status()) &&
          !stopping_.load(std::memory_order_relaxed)) {
        SGCL_LOG(WARNING) << "coordinator connection"
                       << (greeted ? StrFormat(" (rank %u)", rank) : "")
                       << ": " << frame.status().ToString();
      }
      break;
    }
    const FrameType type = static_cast<FrameType>(frame->type);
    if (type == FrameType::kHello) {
      Result<uint32_t> hello = HandleHello(channel, *frame);
      if (!hello.ok()) break;  // REJECT already sent
      rank = *hello;
      greeted = true;
      continue;
    }
    if (!greeted) {
      SGCL_LOG(WARNING) << "coordinator: " << FrameTypeToString(frame->type)
                     << " before HELLO; closing connection";
      break;
    }
    Status handled = Status::OK();
    switch (type) {
      case FrameType::kLeaf:
        handled = HandleLeaf(*frame, rank);
        break;
      case FrameType::kRoundRequest:
        handled = HandleRoundRequest(channel, *frame);
        break;
      case FrameType::kGoodbye: {
        std::lock_guard<std::mutex> lock(mu_);
        ++goodbyes_;
        cv_.notify_all();
        handled = Status::Unavailable("goodbye");  // normal exit
        break;
      }
      default:
        handled = Status::InvalidArgument(
            StrFormat("unexpected %s frame", FrameTypeToString(frame->type)));
        break;
    }
    if (!handled.ok()) {
      if (handled.message() != "goodbye" &&
          !stopping_.load(std::memory_order_relaxed)) {
        SGCL_LOG(WARNING) << "coordinator rank " << rank << ": "
                       << handled.ToString();
      }
      break;
    }
  }
  channel->ShutdownWake();
  if (greeted) {
    std::lock_guard<std::mutex> lock(mu_);
    workers_[rank].connected = false;
    PublishWorkerRow(rank, false);
  }
}

Result<uint32_t> AllReduceCoordinator::HandleHello(FramedChannel* channel,
                                                   const Frame& frame) {
  BufferReader reader(frame.payload);
  WorkerHello hello;
  hello.rank = reader.ReadU32();
  hello.schedule = ReadSchedule(&reader);
  hello.next_round = reader.ReadU64();
  SGCL_RETURN_NOT_OK(reader.Finish("HELLO payload"));
  std::string reject;
  if (hello.rank >= options_.schedule.world_size) {
    reject = StrFormat("rank %u outside world of %u", hello.rank,
                       options_.schedule.world_size);
  } else {
    reject = options_.schedule.DescribeMismatch(hello.schedule);
  }
  if (!reject.empty()) {
    SGCL_LOG(WARNING) << "coordinator rejecting rank " << hello.rank << ": "
                   << reject;
    SGCL_RETURN_NOT_OK(channel->Send(FrameType::kReject, reject));
    return Status::FailedPrecondition(reject);
  }
  uint64_t completed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    completed = completed_next_;
    WorkerStat& stat = workers_[hello.rank];
    stat.connected = true;
    PublishWorkerRow(hello.rank, true);
  }
  BufferWriter writer;
  writer.WriteU64(completed);
  SGCL_RETURN_NOT_OK(channel->Send(FrameType::kWelcome, writer.bytes()));
  SGCL_LOG(INFO) << "coordinator: rank " << hello.rank << " joined at round "
                 << hello.next_round << " (reduced through " << completed
                 << ")";
  return hello.rank;
}

Status AllReduceCoordinator::HandleLeaf(const Frame& frame, uint32_t rank) {
  BufferReader reader(frame.payload);
  const uint64_t round = reader.ReadU64();
  const uint32_t slot = reader.ReadU32();
  const double loss = reader.ReadF64();
  std::vector<float> grad = reader.ReadFloatVector();
  SGCL_RETURN_NOT_OK(reader.Finish("LEAF payload"));
  if (grad.size() != options_.schedule.grad_dim) {
    return Status::InvalidArgument(
        StrFormat("LEAF gradient has %zu elements, schedule says %llu",
                  grad.size(),
                  static_cast<unsigned long long>(
                      options_.schedule.grad_dim)));
  }
  if (round >= options_.schedule.total_rounds()) {
    return Status::OutOfRange(
        StrFormat("LEAF for round %llu of %llu",
                  static_cast<unsigned long long>(round),
                  static_cast<unsigned long long>(
                      options_.schedule.total_rounds())));
  }
  const uint32_t leaves = options_.schedule.leaves_in_round(round);
  if (slot >= leaves) {
    return Status::OutOfRange(StrFormat(
        "LEAF slot %u in a round of %u leaves", slot, leaves));
  }
  std::lock_guard<std::mutex> lock(mu_);
  WorkerStat& stat = workers_[rank];
  stat.last_round = static_cast<int64_t>(round);
  ++stat.leaves;
  PublishWorkerRow(rank, stat.connected);
  // First write wins: a leaf for an already-reduced round (or an
  // already-present slot) is a rejoiner re-submitting work the cluster
  // has; a deterministic recompute is bitwise-equal, so dropping it is
  // sound.
  if (round < completed_next_) return Status::OK();
  PendingRound& pending = pending_[round];
  if (pending.present.empty()) {
    pending.leaf_grads.resize(leaves);
    pending.leaf_losses.assign(leaves, 0.0);
    pending.present.assign(leaves, false);
  }
  if (pending.present[slot]) return Status::OK();
  pending.present[slot] = true;
  pending.leaf_grads[slot] = std::move(grad);
  pending.leaf_losses[slot] = loss;
  ++pending.received;
  // Promote every newly-complete round in order. Rounds complete in
  // order by construction (no worker reaches round r+1 before applying
  // round r), but the loop keeps the invariant local instead of
  // trusting the argument.
  while (true) {
    auto it = pending_.find(completed_next_);
    if (it == pending_.end()) break;
    const uint32_t want =
        options_.schedule.leaves_in_round(completed_next_);
    if (it->second.received < want) break;
    ReducedRound reduced;
    reduced.round = completed_next_;
    reduced.leaf_count = want;
    reduced.grad_sum.assign(options_.schedule.grad_dim, 0.0f);
    // The determinism kernel: fixed slot-order summation, independent
    // of arrival order and worker count.
    for (uint32_t s = 0; s < want; ++s) {
      const std::vector<float>& leaf = it->second.leaf_grads[s];
      for (size_t i = 0; i < reduced.grad_sum.size(); ++i) {
        reduced.grad_sum[i] += leaf[i];
      }
      reduced.loss_sum += it->second.leaf_losses[s];
    }
    pending_.erase(it);
    completed_[reduced.round] = std::move(reduced);
    ++completed_next_;
    RoundsCounter()->Increment();
    while (completed_.size() >
           static_cast<size_t>(std::max(1, options_.cache_rounds))) {
      completed_.erase(completed_.begin());
    }
    cv_.notify_all();
  }
  return Status::OK();
}

Status AllReduceCoordinator::HandleRoundRequest(FramedChannel* channel,
                                                const Frame& frame) {
  BufferReader reader(frame.payload);
  const uint64_t round = reader.ReadU64();
  SGCL_RETURN_NOT_OK(reader.Finish("ROUND_REQUEST payload"));
  std::string payload;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, round] {
      return stopping_.load(std::memory_order_relaxed) ||
             round < completed_next_;
    });
    if (stopping_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("coordinator stopping");
    }
    const auto it = completed_.find(round);
    if (it == completed_.end()) {
      const std::string message = StrFormat(
          "round %llu evicted from the result cache (cache_rounds %d "
          "too small for the checkpoint cadence)",
          static_cast<unsigned long long>(round), options_.cache_rounds);
      lock.unlock();
      SGCL_RETURN_NOT_OK(channel->Send(FrameType::kReject, message));
      return Status::FailedPrecondition(message);
    }
    BufferWriter writer;
    writer.WriteU64(it->second.round);
    writer.WriteU32(it->second.leaf_count);
    writer.WriteF64(it->second.loss_sum);
    writer.WriteFloatVector(it->second.grad_sum);
    payload = writer.TakeBytes();
  }
  return channel->Send(FrameType::kRoundResult, payload);
}

void AllReduceCoordinator::PublishWorkerRow(uint32_t rank, bool connected) {
  if (options_.status_board == nullptr) return;
  const WorkerStat& stat = workers_[rank];
  options_.status_board->RecordWorker(static_cast<int>(rank), connected,
                                      stat.last_round, stat.leaves);
}

Result<JoinReply> AllReduceClient::Join(int port, const WorkerHello& hello,
                                        int connect_deadline_ms,
                                        int io_timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(connect_deadline_ms);
  while (true) {
    const Status status = channel_.Connect(port);
    if (status.ok()) break;
    if (IsSimulatedCrash(status)) return status;
    if (std::chrono::steady_clock::now() >= deadline) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  channel_.SetIoTimeout(io_timeout_ms);
  BufferWriter writer;
  writer.WriteU32(hello.rank);
  WriteSchedule(&writer, hello.schedule);
  writer.WriteU64(hello.next_round);
  SGCL_RETURN_NOT_OK(channel_.Send(FrameType::kHello, writer.bytes()));
  SGCL_ASSIGN_OR_RETURN(const Frame frame, channel_.Recv());
  if (frame.type == static_cast<uint32_t>(FrameType::kReject)) {
    return Status::FailedPrecondition(
        StrFormat("coordinator rejected rank %u: %s", hello.rank,
                  frame.payload.c_str()));
  }
  if (frame.type != static_cast<uint32_t>(FrameType::kWelcome)) {
    return Status::Internal(StrFormat("expected WELCOME, got %s",
                                      FrameTypeToString(frame.type)));
  }
  BufferReader reader(frame.payload);
  JoinReply reply;
  reply.completed_rounds = reader.ReadU64();
  SGCL_RETURN_NOT_OK(reader.Finish("WELCOME payload"));
  return reply;
}

Status AllReduceClient::SubmitLeaf(uint64_t round, uint32_t slot, double loss,
                                   const std::vector<float>& grad) {
  BufferWriter writer;
  writer.WriteU64(round);
  writer.WriteU32(slot);
  writer.WriteF64(loss);
  writer.WriteFloatVector(grad);
  return channel_.Send(FrameType::kLeaf, writer.bytes());
}

Result<ReducedRound> AllReduceClient::GetRound(uint64_t round) {
  BufferWriter writer;
  writer.WriteU64(round);
  SGCL_RETURN_NOT_OK(channel_.Send(FrameType::kRoundRequest, writer.bytes()));
  SGCL_ASSIGN_OR_RETURN(const Frame frame, channel_.Recv());
  if (frame.type == static_cast<uint32_t>(FrameType::kReject)) {
    return Status::FailedPrecondition(frame.payload);
  }
  if (frame.type != static_cast<uint32_t>(FrameType::kRoundResult)) {
    return Status::Internal(StrFormat("expected ROUND_RESULT, got %s",
                                      FrameTypeToString(frame.type)));
  }
  BufferReader reader(frame.payload);
  ReducedRound reduced;
  reduced.round = reader.ReadU64();
  reduced.leaf_count = reader.ReadU32();
  reduced.loss_sum = reader.ReadF64();
  reduced.grad_sum = reader.ReadFloatVector();
  SGCL_RETURN_NOT_OK(reader.Finish("ROUND_RESULT payload"));
  if (reduced.round != round) {
    return Status::Internal(
        StrFormat("asked for round %llu, coordinator sent %llu",
                  static_cast<unsigned long long>(round),
                  static_cast<unsigned long long>(reduced.round)));
  }
  return reduced;
}

Status AllReduceClient::Goodbye(uint32_t rank) {
  BufferWriter writer;
  writer.WriteU32(rank);
  return channel_.Send(FrameType::kGoodbye, writer.bytes());
}

}  // namespace sgcl
