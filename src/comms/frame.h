// Length-prefixed, CRC-guarded frames for the loopback all-reduce
// protocol (comms/allreduce.h).
//
// Wire format (all fields little-endian, matching common/io.h):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------
//   0       4     magic 0x53474346 ("SGCF" read as a LE u32 tag)
//   4       4     frame type (FrameType below; unknown values are
//                 surfaced to the caller, not rejected here)
//   8       4     payload length in bytes (<= kMaxFramePayload)
//   12      4     CRC-32 chained over the type bytes then the payload
//                 (common/crc32.h), so a flipped bit anywhere in the
//                 type field or payload fails the check
//   16      n     payload
//
// The decoder is incremental: callers append whatever recv() produced
// to a buffer and ask TryDecodeFrame whether a complete frame is
// available yet. Truncation at any byte is simply "need more bytes";
// a wrong magic, an oversized length, or a CRC mismatch is a hard
// DataLoss-style error (the stream has no resynchronization points, so
// corruption is fatal to the connection, never silently skipped).
#ifndef SGCL_COMMS_FRAME_H_
#define SGCL_COMMS_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace sgcl {

// "SGCF" bytes in memory order on a little-endian host.
inline constexpr uint32_t kFrameMagic = 0x46434753u;
inline constexpr size_t kFrameHeaderBytes = 16;
// Largest payload a peer may send: bounds a single gradient frame well
// above any real model here (64 MiB) while keeping a corrupt length
// field from looking like an allocation request.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

// Protocol frame types (comms/allreduce.h documents each exchange).
enum class FrameType : uint32_t {
  kHello = 1,         // worker -> coordinator: join/rejoin handshake
  kWelcome = 2,       // coordinator -> worker: handshake accepted
  kReject = 3,        // coordinator -> worker: handshake refused (fatal)
  kLeaf = 4,          // worker -> coordinator: one micro-batch gradient
  kRoundRequest = 5,  // worker -> coordinator: wait for a reduced round
  kRoundResult = 6,   // coordinator -> worker: the reduced round
  kGoodbye = 7,       // worker -> coordinator: clean shutdown
};

const char* FrameTypeToString(uint32_t type);

struct Frame {
  uint32_t type = 0;
  std::string payload;
};

// One complete frame, header + payload, ready to send.
std::string EncodeFrame(uint32_t type, std::string_view payload);
inline std::string EncodeFrame(FrameType type, std::string_view payload) {
  return EncodeFrame(static_cast<uint32_t>(type), payload);
}

// Attempts to decode one frame from the front of `*buffer`.
//   - Returns true and erases the consumed bytes when a complete,
//     CRC-clean frame was extracted into *out.
//   - Returns false when `*buffer` holds a (so far) valid prefix of a
//     frame — the caller should recv more bytes and retry.
//   - Returns a non-OK Status when the buffer can never become a valid
//     frame: bad magic, payload length over kMaxFramePayload, or CRC
//     mismatch. The buffer is left untouched for diagnostics.
Result<bool> TryDecodeFrame(std::string* buffer, Frame* out);

}  // namespace sgcl

#endif  // SGCL_COMMS_FRAME_H_
