#!/usr/bin/env python3
"""CI smoke for the sharded streaming pipeline (DESIGN.md §12).

    check_stream.py <sgcl_cli> <shard_writer> <stream_bench> <bench_diff> \
                    <BENCH_stream.json>

End-to-end over the real binaries:

  1. shard_writer materializes a tiny synthetic store (multiple shards).
  2. Reference: `sgcl_cli pretrain --data-dir` streams an uninterrupted
     run from disk, exporting per-epoch losses via --metrics-out.
  3. Kill: the same run restarts with mid-epoch batch checkpointing
     (--checkpoint-every-batches) and is SIGKILLed after the first epoch
     line — a real process kill, landing at an arbitrary batch/shard
     boundary, not a cooperative shutdown.
  4. Resume: `--resume` picks up the newest (typically mid-epoch)
     checkpoint under a different trainer seed; every epoch loss the
     resumed run reports must equal the reference run's value for the
     same epoch BITWISE (losses travel as %.17g JSON doubles, so float
     equality here is exact-bits equality).
  5. stream_bench emits a fresh benchmark JSON which must line up with
     the committed BENCH_stream.json via `bench_diff --report-only`
     (report-only: CI runners are noisy; the gate is that both parse
     and the metric names match — bench_diff exits 2 on zero matches).

The deterministic per-injection-point crash coverage lives in the
faultinject ctest label; this script proves the same contract holds for
a genuine SIGKILL of the shipped CLI.
"""
import json
import os
import signal
import subprocess
import sys
import time

EPOCHS = 6
MODEL_ARGS = ["--hidden=16", "--layers=2", "--batch=8"]


def run(cmd, **kw):
    print("+", " ".join(cmd), flush=True)
    result = subprocess.run(cmd, capture_output=True, text=True, **kw)
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    assert result.returncode == 0, f"{cmd[0]} exited {result.returncode}"
    return result


def epoch_losses(metrics_jsonl):
    """{epoch: loss} from a --metrics-out export (floats are exact bits)."""
    losses = {}
    with open(metrics_jsonl) as f:
        for line in f:
            rec = json.loads(line)
            if "epoch" in rec:
                losses[rec["epoch"]] = rec["loss"]
    return losses


def main() -> int:
    cli, shard_writer, stream_bench, bench_diff, baseline = sys.argv[1:6]

    # 1. Materialize a multi-shard store (120 graphs / 32 per shard -> 4).
    run([shard_writer, "--out-dir=stream_store", "--graphs=120",
         "--shard-graphs=32", "--seed=9"])

    # 2. Uninterrupted streaming reference.
    run([cli, "pretrain", "--data-dir=stream_store", f"--epochs={EPOCHS}",
         *MODEL_ARGS, "--seed=3", "--prefetch-depth=2",
         "--metrics-out=stream_ref.jsonl", "--out=stream_ref.ckpt"])
    ref = epoch_losses("stream_ref.jsonl")
    assert len(ref) == EPOCHS, ref

    # 3. Same run with mid-epoch checkpoints, SIGKILLed mid-flight.
    proc = subprocess.Popen(
        [cli, "pretrain", "--data-dir=stream_store", f"--epochs={EPOCHS}",
         *MODEL_ARGS, "--seed=3", "--prefetch-depth=2",
         "--checkpoint-dir=stream_ckpt", "--checkpoint-every-batches=2",
         "--checkpoint-keep=0", "--out=stream_kill.ckpt"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 120
    for line in proc.stdout:
        sys.stdout.write(line)
        if line.startswith("epoch 1/"):
            proc.send_signal(signal.SIGKILL)
            break
        assert time.time() < deadline, "pretrain never reported an epoch"
    proc.stdout.read()
    rc = proc.wait(timeout=60)
    assert rc != 0, "run finished before the kill; nothing was interrupted"
    ckpts = sorted(os.listdir("stream_ckpt"))
    assert ckpts, "killed run left no checkpoints"
    assert any("-b" in c for c in ckpts), \
        f"no mid-epoch (batch-cursor) checkpoint among {ckpts}"
    print(f"killed after epoch 1; {len(ckpts)} checkpoints on disk")

    # 4. Resume under a different seed; losses must match the reference
    # bitwise for every epoch the resumed run reports.
    run([cli, "pretrain", "--data-dir=stream_store", f"--epochs={EPOCHS}",
         *MODEL_ARGS, "--seed=31337", "--prefetch-depth=2",
         "--checkpoint-dir=stream_ckpt", "--checkpoint-every-batches=2",
         "--checkpoint-keep=0", "--resume",
         "--metrics-out=stream_resume.jsonl", "--out=stream_resume.ckpt"])
    resumed = epoch_losses("stream_resume.jsonl")
    assert resumed, "resumed run reported no epochs"
    assert EPOCHS - 1 in resumed, f"resumed run never finished: {resumed}"
    for epoch, loss in sorted(resumed.items()):
        assert loss == ref[epoch], (
            f"epoch {epoch}: resumed loss {loss!r} != reference "
            f"{ref[epoch]!r} (not bitwise-identical)")
    print(f"ok: {len(resumed)} resumed epoch losses bitwise-identical "
          f"(epochs {min(resumed)}..{max(resumed)})")

    # 5. Fresh stream_bench run vs the committed baseline, report-only.
    run([stream_bench, "--graphs=96", "--epochs=2", "--batch=16",
         "--hidden=16", "--shard-graphs=32",
         "--out-json=stream_current.json"])
    diff = subprocess.run(
        [bench_diff, baseline, "stream_current.json",
         "--threshold-pct=25", "--report-only"],
        capture_output=True, text=True)
    sys.stdout.write(diff.stdout)
    sys.stderr.write(diff.stderr)
    assert diff.returncode == 0, \
        f"bench_diff exited {diff.returncode} (name mismatch vs baseline?)"
    return 0


if __name__ == "__main__":
    sys.exit(main())
