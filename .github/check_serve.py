#!/usr/bin/env python3
"""CI smoke for `sgcl_cli serve` + serve_load + the serving bench gate.

    check_serve.py <sgcl_cli> <serve_load> <bench_diff> \
                   <dataset.bin> <gin.ckpt> <gcn.ckpt> <baseline.json>

Runs the two scenario pairs recorded in BENCH_serve.json:

  serve/batched vs serve/batch1            GCN checkpoint (tape path)
  serve/fused_batched vs serve/fused_batch1  GIN checkpoint (fused plan)

Each pair starts the inference service on an ephemeral port, drives it
with serve_load for a few seconds, and asserts the 2xx rate — first
with micro-batching on (--max-batch-graphs=16), then with batch-size-1
serving (--max-batch-graphs=1). The tape path has a real per-forward
fixed cost (op dispatch + tensor allocation), so its pair is where
micro-batching shows a >= 2x QPS win; the fused GIN plan's per-forward
cost is near zero, so its pair is expected ~1x and is tracked for
latency regressions instead.

The four result files are merged into serve_current.json and fed to
`bench_diff --report-only` against the committed BENCH_serve.json —
report-only because CI runners are noisy; the gate is that both files
parse and the benchmark names line up (bench_diff exits 2 on zero
matches). The >= 2x acceptance number is measured on the pinned bench
VM, not here.
"""
import json
import re
import signal
import subprocess
import sys
import time

SERVE_LINE = re.compile(r"serve: http://127\.0\.0\.1:(\d+) run_id (\S+)")

# Must match how ci.yml pretrains the two checkpoints.
GIN_ARGS = ["--arch=gin", "--hidden=8", "--layers=2"]
GCN_ARGS = ["--arch=gcn", "--hidden=8", "--layers=3"]

BATCHED = ["--max-batch-graphs=16", "--batch-timeout-us=500"]
BATCH1 = ["--max-batch-graphs=1", "--batch-timeout-us=0"]


class Server:
    """sgcl_cli serve on an ephemeral port; context-managed shutdown."""

    def __init__(self, cli, dataset, model, model_args, extra_args):
        self.proc = subprocess.Popen(
            [cli, "serve", f"--model={model}", f"--data={dataset}",
             "--http-port=0", "--http-threads=16", *model_args, *extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        self.port = 0
        deadline = time.time() + 60
        for line in self.proc.stdout:
            m = SERVE_LINE.search(line)
            if m:
                self.port = int(m.group(1))
                break
            assert time.time() < deadline, "serve never announced a port"
        assert self.port, "serve exited before announcing a port"

    def stop(self):
        self.proc.send_signal(signal.SIGINT)
        self.proc.stdout.read()  # drain the shutdown status JSON
        rc = self.proc.wait(timeout=60)
        assert rc == 0, f"serve exited with {rc}"


def run_load(serve_load, port, prefix, out_json):
    cmd = [serve_load, f"--port={port}", "--endpoint=embed",
           "--concurrency=16", "--duration-s=3", "--warmup-s=0.5",
           "--graphs-per-request=16", "--nodes=4", "--features=onehot",
           "--seed=11", f"--name-prefix={prefix}", f"--out-json={out_json}"]
    result = subprocess.run(cmd, capture_output=True, text=True)
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    assert result.returncode == 0, f"serve_load exited {result.returncode}"
    doc = json.load(open(out_json))
    ctx = doc["context"]
    ok_rate = ctx["ok"] / max(1, ctx["requests"])
    assert ok_rate >= 0.99, f"{prefix}: 2xx rate {ok_rate:.3f} < 0.99"
    assert ctx["qps"] > 0, ctx
    return doc


def run_pair(cli, serve_load, dataset, model, model_args, prefix):
    server = Server(cli, dataset, model, model_args, BATCHED)
    try:
        batched = run_load(serve_load, server.port, f"{prefix}batched",
                           f"serve_{prefix.replace('/', '_')}batched.json")
    finally:
        server.stop()

    server = Server(cli, dataset, model, model_args, BATCH1)
    try:
        batch1 = run_load(serve_load, server.port, f"{prefix}batch1",
                          f"serve_{prefix.replace('/', '_')}batch1.json")
    finally:
        server.stop()

    qps_b = batched["context"]["qps"]
    qps_1 = batch1["context"]["qps"]
    occupancy = batched["context"]["batch_occupancy_mean"]
    print(f"ok: {prefix}batched {qps_b:.1f} qps (occupancy {occupancy:.2f}) "
          f"vs {prefix}batch1 {qps_1:.1f} qps "
          f"-> {qps_b / max(qps_1, 1e-9):.2f}x")
    return batched, batch1


def main() -> int:
    cli, serve_load, bench_diff, dataset, gin, gcn, baseline = sys.argv[1:8]

    tape_b, tape_1 = run_pair(cli, serve_load, dataset, gcn, GCN_ARGS,
                              "serve/")
    fused_b, fused_1 = run_pair(cli, serve_load, dataset, gin, GIN_ARGS,
                                "serve/fused_")

    merged = {"context": tape_b["context"],
              "benchmarks": (tape_b["benchmarks"] + tape_1["benchmarks"] +
                             fused_b["benchmarks"] + fused_1["benchmarks"])}
    with open("serve_current.json", "w") as out:
        json.dump(merged, out, indent=1)

    diff = subprocess.run(
        [bench_diff, baseline, "serve_current.json",
         "--threshold-pct=25", "--report-only"],
        capture_output=True, text=True)
    sys.stdout.write(diff.stdout)
    sys.stderr.write(diff.stderr)
    assert diff.returncode == 0, \
        f"bench_diff exited {diff.returncode} (name mismatch vs baseline?)"
    return 0


if __name__ == "__main__":
    sys.exit(main())
