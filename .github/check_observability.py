#!/usr/bin/env python3
"""Validates sgcl_cli pretrain's observability exports.

Usage: check_observability.py <metrics.jsonl> <trace.json>

Checks that the metrics JSONL parses line-by-line with per-epoch loss and
stage timings plus a final registry snapshot, and that the trace file is
chrome://tracing-loadable JSON containing the pipeline's stage spans.
"""
import json
import sys

EXPECTED_STAGES = {"generator", "augmentation", "encode", "loss",
                   "backward", "optimizer"}


def main() -> int:
    metrics_path, trace_path = sys.argv[1], sys.argv[2]

    lines = open(metrics_path).read().splitlines()
    assert len(lines) >= 2, f"expected >= 2 JSONL records, got {len(lines)}"
    epochs = [json.loads(line) for line in lines[:-1]]
    for rec in epochs:
        assert {"epoch", "loss", "seconds", "stages"} <= rec.keys(), rec
        assert EXPECTED_STAGES <= rec["stages"].keys(), rec
    final = json.loads(lines[-1])
    assert final.get("final") and "metrics" in final, final
    assert "train/batches" in final["metrics"]["counters"], final

    trace = json.load(open(trace_path))
    names = {event["name"] for event in trace["traceEvents"]}
    assert {"generator", "augmentation", "loss"} <= names, names

    print(f"ok: {len(epochs)} epoch records, "
          f"{len(trace['traceEvents'])} trace events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
