#!/usr/bin/env python3
"""Validates sgcl_cli pretrain's observability exports.

Offline mode (file exports):
    check_observability.py <metrics.jsonl> <trace.json>

Checks that the metrics JSONL parses line-by-line with per-epoch loss and
stage timings plus a final registry snapshot, and that the trace file is
chrome://tracing-loadable JSON containing the pipeline's stage spans.

Live mode (telemetry endpoint):
    check_observability.py --live <sgcl_cli> <dataset.bin>

Launches `sgcl_cli pretrain --http-port=0`, parses the announced port,
and curls /healthz, /status, and /metrics (twice) while the run is in
flight: the Prometheus text must parse, carry no duplicate series, and
show monotone counters across the two scrapes. The run's file exports
(obs_metrics.jsonl / obs_trace.json) are left behind for offline checks.
"""
import json
import re
import subprocess
import sys
import time
import urllib.request

EXPECTED_STAGES = {"generator", "augmentation", "encode", "loss",
                   "backward", "optimizer"}

TELEMETRY_LINE = re.compile(
    r"telemetry: http://127\.0\.0\.1:(\d+) run_id (\S+)")

SERIES_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s(\S+)$")


def check_files(metrics_path: str, trace_path: str) -> None:
    lines = open(metrics_path).read().splitlines()
    assert len(lines) >= 2, f"expected >= 2 JSONL records, got {len(lines)}"
    epochs = [json.loads(line) for line in lines[:-1]]
    for rec in epochs:
        assert {"epoch", "loss", "seconds", "stages"} <= rec.keys(), rec
        assert EXPECTED_STAGES <= rec["stages"].keys(), rec
    final = json.loads(lines[-1])
    assert final.get("final") and "metrics" in final, final
    assert "train/batches" in final["metrics"]["counters"], final
    assert final.get("run_id", "").startswith("run-"), final

    trace = json.load(open(trace_path))
    names = {event["name"] for event in trace["traceEvents"]}
    assert {"generator", "augmentation", "loss"} <= names, names

    print(f"ok: {len(epochs)} epoch records, "
          f"{len(trace['traceEvents'])} trace events")


def scrape(port: int, path: str) -> str:
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=5) as response:
        assert response.status == 200, (path, response.status)
        return response.read().decode("utf-8")


def parse_prometheus(text: str):
    """Returns ({metric: type}, {series_key: value}), asserting the
    exposition-format grammar and series uniqueness."""
    types, series = {}, {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                assert parts[2] not in types, f"duplicate TYPE {parts[2]}"
                types[parts[2]] = parts[3]
            continue
        m = SERIES_LINE.match(line)
        assert m, f"unparsable series line: {line!r}"
        key = m.group(1) + (m.group(2) or "")
        assert key not in series, f"duplicate series {key}"
        series[key] = float(m.group(3))  # accepts NaN/+Inf/-Inf spellings
    assert series, "no series in /metrics"
    return types, series


def check_live(cli: str, dataset: str) -> None:
    # Sized to run for a few seconds so the scrapes land mid-flight even
    # on fast machines (a 16-wide 2-layer run finishes in milliseconds).
    epochs = 40
    proc = subprocess.Popen(
        [cli, "pretrain", f"--data={dataset}", f"--epochs={epochs}",
         "--hidden=64", "--layers=3", "--batch=8", "--out=obs_model.ckpt",
         "--metrics-out=obs_metrics.jsonl", "--trace-out=obs_trace.json",
         "--http-port=0"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    port, run_id = 0, ""
    try:
        for line in proc.stdout:
            m = TELEMETRY_LINE.search(line)
            if m:
                port, run_id = int(m.group(1)), m.group(2)
                break
        assert port, "pretrain never announced a telemetry port"

        health = json.loads(scrape(port, "/healthz"))
        assert health["status"] == "ok", health
        assert health["run_id"] == run_id, health
        assert "version" in health and "uptime_seconds" in health, health

        # The port is announced just before BeginRun; poll past the gap.
        for _ in range(50):
            status = json.loads(scrape(port, "/status"))
            if status["state"] != "idle":
                break
            time.sleep(0.1)
        assert status["state"] in ("running", "done"), status
        assert status["command"] == "pretrain", status
        assert status["run_id"] == run_id, status
        assert status["total_epochs"] == epochs, status

        types1, series1 = parse_prometheus(scrape(port, "/metrics"))
        types2, series2 = parse_prometheus(scrape(port, "/metrics"))
        assert types1.keys() <= types2.keys(), "metrics disappeared"
        counters = [name for name, kind in types2.items()
                    if kind == "counter"]
        assert counters, "no counters exported"
        for name in counters:
            before = series1.get(name)
            after = series2.get(name)
            if before is not None and after is not None:
                assert after >= before, (name, before, after)
    finally:
        # Drain stdout so the CLI never blocks on a full pipe, then wait.
        proc.stdout.read()
        rc = proc.wait(timeout=300)
    assert rc == 0, f"pretrain exited with {rc}"
    print(f"ok: live scrape on port {port}, run {run_id}, "
          f"{len(series2)} series, {len(counters)} counters monotone")


def main() -> int:
    if sys.argv[1] == "--live":
        check_live(sys.argv[2], sys.argv[3])
    else:
        check_files(sys.argv[1], sys.argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main())
