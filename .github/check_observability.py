#!/usr/bin/env python3
"""Validates sgcl_cli pretrain's observability exports.

Offline mode (file exports):
    check_observability.py <metrics.jsonl> <trace.json>

Checks that the metrics JSONL parses line-by-line with per-epoch loss and
stage timings plus a final registry snapshot, and that the trace file is
chrome://tracing-loadable JSON containing the pipeline's stage spans.

Live mode (telemetry endpoint):
    check_observability.py --live <sgcl_cli> <dataset.bin>

Launches `sgcl_cli pretrain --http-port=0 --trace-sample-rate=1`,
parses the announced port, and curls /healthz, /status, /metrics
(twice), and /v1/traces while the run is in flight: the Prometheus text
must parse, carry no duplicate series, and show monotone counters
across the two scrapes, and the trace ring must hold committed
train/batch trees. The run's file exports (obs_metrics.jsonl /
obs_trace.json) are left behind for offline checks.

Serve-trace mode (request tracing end to end):
    check_observability.py --serve <sgcl_cli> <serve_load> \
                           <trace_report> <dataset.bin> <model.ckpt>

Starts `sgcl_cli serve --trace-sample-rate=1`, drives it with
serve_load --slowest-traces, then asserts: the /metrics latency
histogram carries a bucket exemplar that resolves at /v1/traces/<id>;
the span tree is well-formed (serve/request root with queue wait, batch
formation, forward, and encode children that sum to within 10% of the
root's wall time); and `trace_report` parses the /v1/traces?detail=1
dump (nonzero exit on parse failure fails the check).
"""
import json
import re
import signal
import subprocess
import sys
import time
import urllib.request

EXPECTED_STAGES = {"generator", "augmentation", "encode", "loss",
                   "backward", "optimizer"}

# Every stage a served request passes through; serve/parse is tiny but
# must still be present for the tree to account for the request.
SERVE_STAGES = {"serve/parse", "serve/queue_wait", "serve/batch_form",
                "serve/forward", "serve/encode"}

TELEMETRY_LINE = re.compile(
    r"telemetry: http://127\.0\.0\.1:(\d+) run_id (\S+)")

SERVE_LINE = re.compile(r"serve: http://127\.0\.0\.1:(\d+) run_id (\S+)")

# Value, optionally followed by an OpenMetrics-style exemplar
# (` # {trace_id="..."} <value>`) as emitted on histogram bucket lines.
SERIES_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s(\S+)"
    r"(?:\s#\s\{[^}]*\}\s\S+)?$")

EXEMPLAR_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*_bucket)\{[^}]*\}\s\S+"
    r"\s#\s\{trace_id=\"([0-9a-f]{16})\"\}\s\S+$")


def check_files(metrics_path: str, trace_path: str) -> None:
    lines = open(metrics_path).read().splitlines()
    assert len(lines) >= 2, f"expected >= 2 JSONL records, got {len(lines)}"
    epochs = [json.loads(line) for line in lines[:-1]]
    for rec in epochs:
        assert {"epoch", "loss", "seconds", "stages"} <= rec.keys(), rec
        assert EXPECTED_STAGES <= rec["stages"].keys(), rec
    final = json.loads(lines[-1])
    assert final.get("final") and "metrics" in final, final
    assert "train/batches" in final["metrics"]["counters"], final
    assert final.get("run_id", "").startswith("run-"), final

    trace = json.load(open(trace_path))
    names = {event["name"] for event in trace["traceEvents"]}
    assert {"generator", "augmentation", "loss"} <= names, names

    print(f"ok: {len(epochs)} epoch records, "
          f"{len(trace['traceEvents'])} trace events")


def scrape(port: int, path: str) -> str:
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=5) as response:
        assert response.status == 200, (path, response.status)
        return response.read().decode("utf-8")


def parse_prometheus(text: str):
    """Returns ({metric: type}, {series_key: value}), asserting the
    exposition-format grammar and series uniqueness."""
    types, series = {}, {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                assert parts[2] not in types, f"duplicate TYPE {parts[2]}"
                types[parts[2]] = parts[3]
            continue
        m = SERIES_LINE.match(line)
        assert m, f"unparsable series line: {line!r}"
        key = m.group(1) + (m.group(2) or "")
        assert key not in series, f"duplicate series {key}"
        series[key] = float(m.group(3))  # accepts NaN/+Inf/-Inf spellings
    assert series, "no series in /metrics"
    return types, series


def check_live(cli: str, dataset: str) -> None:
    # Sized to run for a few seconds so the scrapes land mid-flight even
    # on fast machines (a 16-wide 2-layer run finishes in milliseconds).
    epochs = 40
    proc = subprocess.Popen(
        [cli, "pretrain", f"--data={dataset}", f"--epochs={epochs}",
         "--hidden=64", "--layers=3", "--batch=8", "--out=obs_model.ckpt",
         "--metrics-out=obs_metrics.jsonl", "--trace-out=obs_trace.json",
         "--http-port=0", "--trace-sample-rate=1", "--trace-ring-size=64"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True)
    port, run_id = 0, ""
    try:
        for line in proc.stdout:
            m = TELEMETRY_LINE.search(line)
            if m:
                port, run_id = int(m.group(1)), m.group(2)
                break
        assert port, "pretrain never announced a telemetry port"

        health = json.loads(scrape(port, "/healthz"))
        assert health["status"] == "ok", health
        assert health["run_id"] == run_id, health
        assert "version" in health and "uptime_seconds" in health, health

        # The port is announced just before BeginRun; poll past the gap.
        for _ in range(50):
            status = json.loads(scrape(port, "/status"))
            if status["state"] != "idle":
                break
            time.sleep(0.1)
        assert status["state"] in ("running", "done"), status
        assert status["command"] == "pretrain", status
        assert status["run_id"] == run_id, status
        assert status["total_epochs"] == epochs, status

        types1, series1 = parse_prometheus(scrape(port, "/metrics"))
        types2, series2 = parse_prometheus(scrape(port, "/metrics"))
        assert types1.keys() <= types2.keys(), "metrics disappeared"
        counters = [name for name, kind in types2.items()
                    if kind == "counter"]
        assert counters, "no counters exported"
        for name in counters:
            before = series1.get(name)
            after = series2.get(name)
            if before is not None and after is not None:
                assert after >= before, (name, before, after)

        # Every batch is sampled, so the ring fills with committed
        # train/batch trees; poll past the first-batch window.
        for _ in range(50):
            traces = json.loads(scrape(port, "/v1/traces"))
            if traces["committed"] > 0:
                break
            time.sleep(0.1)
        assert traces["sample_rate"] == 1.0, traces
        assert traces["committed"] > 0, traces
        assert traces["traces"][0]["root"] == "train/batch", traces
    finally:
        # Drain stdout so the CLI never blocks on a full pipe, then wait.
        proc.stdout.read()
        rc = proc.wait(timeout=300)
    assert rc == 0, f"pretrain exited with {rc}"
    print(f"ok: live scrape on port {port}, run {run_id}, "
          f"{len(series2)} series, {len(counters)} counters monotone")


def span_index(tree: dict):
    """Flattens a /v1/traces/<id> span tree into {name: node}."""
    nodes = {}

    def walk(node):
        nodes[node["name"]] = node
        for child in node.get("children", []):
            walk(child)

    walk(tree["root"])
    return nodes


def check_serve_traces(cli: str, serve_load: str, trace_report: str,
                       dataset: str, model: str) -> None:
    proc = subprocess.Popen(
        [cli, "serve", f"--model={model}", f"--data={dataset}",
         "--arch=gcn", "--hidden=8", "--layers=3", "--http-port=0",
         "--http-threads=8", "--max-batch-graphs=16",
         "--batch-timeout-us=500", "--trace-sample-rate=1",
         "--trace-ring-size=256"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    port = 0
    try:
        for line in proc.stdout:
            m = SERVE_LINE.search(line)
            if m:
                port = int(m.group(1))
                break
        assert port, "serve exited before announcing a port"

        load = subprocess.run(
            [serve_load, f"--port={port}", "--endpoint=embed",
             "--concurrency=4", "--duration-s=2", "--warmup-s=0.2",
             "--graphs-per-request=4", "--nodes=4", "--features=onehot",
             "--seed=11", "--slowest-traces=3"],
            capture_output=True, text=True)
        sys.stdout.write(load.stdout)
        assert load.returncode == 0, f"serve_load exited {load.returncode}"
        assert "slowest traces" in load.stdout, load.stdout

        # The p99 debugging loop: a latency-histogram bucket exemplar in
        # /metrics names a trace id the ring can resolve.
        metrics = scrape(port, "/metrics")
        parse_prometheus(metrics)  # exemplar suffix must stay parsable
        exemplars = [m.group(2) for line in metrics.splitlines()
                     if (m := EXEMPLAR_LINE.match(line))
                     and m.group(1).startswith("sgcl_serve_")]
        assert exemplars, "no serve latency exemplars in /metrics"

        listing = json.loads(scrape(port, "/v1/traces"))
        assert listing["committed"] > 0, listing
        live_ids = {t["trace_id"] for t in listing["traces"]}
        # The tail-attribution target is the p99-bucket exemplar: of the
        # exemplar ids still resident in the ring, inspect the slowest
        # (per-stage bookkeeping is fixed ~10 us, so only tail requests
        # can meaningfully be asked to tile to 10%). Fall back to the
        # ring's longest trace if every exemplar was evicted.
        candidates = [x for x in exemplars if x in live_ids]
        if not candidates:
            candidates = [max(listing["traces"],
                              key=lambda t: t["dur_us"])["trace_id"]]
        trees = [json.loads(scrape(port, f"/v1/traces/{x}"))
                 for x in candidates]
        tree = max(trees, key=lambda t: t["root"]["dur_us"])
        trace_id = tree["trace_id"]
        nodes = span_index(tree)
        missing = SERVE_STAGES - nodes.keys()
        assert not missing, f"span tree lacks stages {missing}: {tree}"
        root = tree["root"]
        assert root["name"] == "serve/request", root["name"]
        # The instrumented stages must account for the request: their
        # durations sum to within 10% of the root's wall time.
        staged = sum(nodes[name]["dur_us"] for name in SERVE_STAGES)
        assert abs(staged - root["dur_us"]) <= 0.1 * root["dur_us"], \
            f"stages cover {staged} of {root['dur_us']} us"

        # trace_report reproduces the breakdown offline from the dump;
        # a parse failure exits nonzero and fails this check.
        dump = scrape(port, "/v1/traces?detail=1")
        with open("serve_traces.json", "w") as out:
            out.write(dump)
        report = subprocess.run(
            [trace_report, "serve_traces.json", "--top=3"],
            capture_output=True, text=True)
        sys.stdout.write(report.stdout)
        assert report.returncode == 0, \
            f"trace_report exited {report.returncode}: {report.stderr}"
        assert "serve/forward" in report.stdout, report.stdout
    finally:
        proc.send_signal(signal.SIGINT)
        proc.stdout.read()
        rc = proc.wait(timeout=60)
    assert rc == 0, f"serve exited with {rc}"
    print(f"ok: serve trace smoke on port {port}, trace {trace_id}, "
          f"{len(exemplars)} exemplar(s), trace_report parsed the dump")


def main() -> int:
    if sys.argv[1] == "--live":
        check_live(sys.argv[2], sys.argv[3])
    elif sys.argv[1] == "--serve":
        check_serve_traces(*sys.argv[2:7])
    else:
        check_files(sys.argv[1], sys.argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main())
