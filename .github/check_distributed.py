#!/usr/bin/env python3
"""CI smoke for multi-process data-parallel pretraining (DESIGN.md §14).

    check_distributed.py <sgcl_cli> <distributed_bench> <bench_diff> \
                         <BENCH_distributed.json>

End-to-end over the real binaries, with a real process kill:

  1. Reference: `sgcl_cli pretrain --workers=1` (the one-worker
     DISTRIBUTED schedule — grad-accum rounds, not the plain per-batch
     loop) exports per-epoch losses via --metrics-out.
  2. Cluster: rank 0 starts the coordinator on an ephemeral port
     (parsed from its 'coordinator: 127.0.0.1:PORT' line); rank 1
     connects to it. Both checkpoint every round.
  3. Kill: rank 1 is SIGKILLed after its first 'epoch 1/' line — a real
     mid-run process death, not a cooperative shutdown. Rank 0 blocks
     in GetRound waiting for the missing leaves.
  4. Rejoin: rank 1 relaunches under a DIFFERENT trainer seed with
     --resume; the checkpointed train_seed must carry the stochastic
     stream. It re-handshakes, catches up from the coordinator's round
     cache, and the cluster finishes.
  5. Parity: every epoch loss each rank reports must equal the
     1-worker reference BITWISE (losses travel as %.17g JSON doubles,
     so float equality here is exact-bits equality).
  6. distributed_bench emits a fresh benchmark JSON which must line up
     with the committed BENCH_distributed.json via `bench_diff
     --report-only` (report-only: CI runners are noisy and 2-worker
     speedup depends on the runner's core count; the gate is that both
     parse and the metric names match — bench_diff exits 2 on zero
     matches).

The deterministic per-injection-point crash coverage lives in the
faultinject ctest label (comms_faultinject_test); this script proves
the same contract holds for a genuine SIGKILL of the shipped CLI.
"""
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

EPOCHS = 6
ACCUM = 4
MODEL_ARGS = ["--hidden=16", "--layers=2", "--batch=4", "--seed=3",
              f"--epochs={EPOCHS}", f"--grad-accum={ACCUM}"]


def run(cmd, **kw):
    print("+", " ".join(cmd), flush=True)
    result = subprocess.run(cmd, capture_output=True, text=True, **kw)
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    assert result.returncode == 0, f"{cmd[0]} exited {result.returncode}"
    return result


def epoch_losses(metrics_jsonl):
    """{epoch: loss} from a --metrics-out export (floats are exact bits)."""
    losses = {}
    with open(metrics_jsonl) as f:
        for line in f:
            rec = json.loads(line)
            if "epoch" in rec:
                losses[rec["epoch"]] = rec["loss"]
    return losses


def assert_bitwise(losses, ref, who):
    assert losses, f"{who} reported no epochs"
    for epoch, loss in sorted(losses.items()):
        assert loss == ref[epoch], (
            f"{who} epoch {epoch}: loss {loss!r} != reference "
            f"{ref[epoch]!r} (not bitwise-identical)")


def main() -> int:
    cli, distributed_bench, bench_diff, baseline = sys.argv[1:5]

    run([cli, "generate", "--dataset=MUTAG", "--graphs=48", "--node-cap=14",
         "--seed=3", "--out=dist_ds.bin"])

    # 1. One-worker distributed reference (same rounds, one process).
    run([cli, "pretrain", "--data=dist_ds.bin", *MODEL_ARGS,
         "--workers=1", "--rank=0", "--coordinator-port=0",
         "--metrics-out=dist_ref.jsonl", "--out=dist_ref.ckpt"])
    ref = epoch_losses("dist_ref.jsonl")
    assert len(ref) == EPOCHS, ref

    # 2. Rank 0: coordinator on an ephemeral port + worker 0 of 2.
    rank0 = subprocess.Popen(
        [cli, "pretrain", "--data=dist_ds.bin", *MODEL_ARGS,
         "--workers=2", "--rank=0", "--coordinator-port=0",
         "--checkpoint-dir=dist_ckpt", "--checkpoint-every-batches=4",
         "--checkpoint-keep=0",
         "--metrics-out=dist_r0.jsonl", "--out=dist_r0.ckpt"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    port = None
    rank0_tail = []
    deadline = time.time() + 60
    for line in rank0.stdout:
        sys.stdout.write(line)
        m = re.match(r"coordinator: 127\.0\.0\.1:(\d+)", line)
        if m:
            port = int(m.group(1))
            break
        assert time.time() < deadline, "rank 0 never printed its port"
    assert port, "rank 0 exited before announcing the coordinator port"
    # Keep rank 0's pipe drained while the cluster runs.
    drainer = threading.Thread(
        target=lambda: rank0_tail.extend(rank0.stdout), daemon=True)
    drainer.start()

    # 3. Rank 1 joins, then dies for real after its first epoch line.
    rank1_cmd = [cli, "pretrain", "--data=dist_ds.bin", *MODEL_ARGS,
                 "--workers=2", "--rank=1", f"--coordinator-port={port}",
                 "--checkpoint-dir=dist_ckpt",
                 "--checkpoint-every-batches=4", "--checkpoint-keep=0",
                 "--metrics-out=dist_r1.jsonl", "--out=dist_r1.ckpt"]
    rank1 = subprocess.Popen(rank1_cmd, stdout=subprocess.PIPE,
                             stderr=subprocess.STDOUT, text=True)
    deadline = time.time() + 120
    for line in rank1.stdout:
        sys.stdout.write(line)
        if line.startswith("epoch 1/"):
            rank1.send_signal(signal.SIGKILL)
            break
        assert time.time() < deadline, "rank 1 never reported an epoch"
    rank1.stdout.read()
    rc = rank1.wait(timeout=60)
    assert rc != 0, "rank 1 finished before the kill; nothing was interrupted"
    ckpts = sorted(os.listdir("dist_ckpt/rank-1"))
    assert ckpts, "killed rank 1 left no checkpoints"
    print(f"killed rank 1 after epoch 1; {len(ckpts)} checkpoints on disk")

    # 4. Rank 1 rejoins under a different seed; the checkpointed
    # train_seed must make the new seed irrelevant.
    rejoin_cmd = [arg if not arg.startswith("--seed=") else "--seed=31337"
                  for arg in rank1_cmd] + ["--resume"]
    run(rejoin_cmd, timeout=300)

    rc0 = rank0.wait(timeout=300)
    drainer.join(timeout=60)
    sys.stdout.writelines(rank0_tail)
    assert rc0 == 0, f"rank 0 exited {rc0}"

    # 5. Bitwise parity: both ranks against the 1-worker reference.
    r0 = epoch_losses("dist_r0.jsonl")
    assert len(r0) == EPOCHS, r0
    assert_bitwise(r0, ref, "rank 0")
    resumed = epoch_losses("dist_r1.jsonl")
    assert EPOCHS - 1 in resumed, f"rejoined rank 1 never finished: {resumed}"
    assert_bitwise(resumed, ref, "rejoined rank 1")
    print(f"ok: 2-worker losses bitwise-identical to --workers=1 "
          f"across the kill/rejoin (epochs {min(resumed)}..{max(resumed)} "
          f"re-reported by rank 1)")

    # 6. Fresh scaling bench vs the committed baseline, report-only.
    run([distributed_bench, "--graphs=96", "--epochs=2", "--batch=4",
         "--accum=8", "--worlds=1,2", "--out-json=dist_current.json"])
    diff = subprocess.run(
        [bench_diff, baseline, "dist_current.json",
         "--threshold-pct=25", "--report-only"],
        capture_output=True, text=True)
    sys.stdout.write(diff.stdout)
    sys.stderr.write(diff.stderr)
    assert diff.returncode == 0, \
        f"bench_diff exited {diff.returncode} (name mismatch vs baseline?)"
    return 0


if __name__ == "__main__":
    sys.exit(main())
