// Reproduces paper Figure 5: sensitivity of SGCL to lambda_c, lambda_W,
// rho, and tau in the transfer protocol (pretrain on the ZINC-like
// corpus, fine-tune on BBBP-like; ROC-AUC %).
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/sgcl_trainer.h"
#include "eval/finetune.h"
#include "eval/metrics.h"
#include "graph/splits.h"

using namespace sgcl;         // NOLINT
using namespace sgcl::bench;  // NOLINT

namespace {

struct Sweep {
  const char* name;
  std::vector<double> values;
  void (*apply)(SgclConfig*, double);
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string only;
  BenchScale scale = ParseArgs(argc, argv, &only);

  GraphDataset zinc = MakeZincLikeDataset(scale.zinc_graphs, /*seed=*/321);
  GraphDataset bbbp = MakeMol(MolTask::kBbbp, scale, /*seed=*/501);
  ThreeWaySplit split = ScaffoldSplit(bbbp, 0.8, 0.1);
  FinetuneConfig ft;
  ft.epochs = scale.finetune_epochs;
  ft.batch_size = scale.batch_size;

  const std::vector<Sweep> sweeps = {
      {"lambda_c",
       {0.0001, 0.001, 0.005, 0.01, 0.05, 0.1},
       [](SgclConfig* c, double v) { c->lambda_c = static_cast<float>(v); }},
      {"lambda_W",
       {0.001, 0.01, 0.05, 0.1, 0.2, 0.5},
       [](SgclConfig* c, double v) { c->lambda_w = static_cast<float>(v); }},
      {"rho",
       {0.5, 0.6, 0.7, 0.8, 0.9},
       [](SgclConfig* c, double v) { c->rho = v; }},
      {"tau",
       {0.1, 0.2, 0.3, 0.4, 0.5},
       [](SgclConfig* c, double v) { c->tau = static_cast<float>(v); }},
  };

  Stopwatch total;
  std::printf(
      "Figure 5 — SGCL hyperparameter sensitivity, transfer "
      "(BBBP ROC-AUC %%) [mode=%s]\n\n",
      scale.paper ? "paper" : "ci");
  for (const Sweep& sweep : sweeps) {
    if (!Selected(sweep.name, only)) continue;
    std::printf("%s:\n", sweep.name);
    for (double v : sweep.values) {
      std::vector<double> per_seed;
      for (int s = 0; s < scale.seeds; ++s) {
        const uint64_t seed = 4000ULL * (s + 1);
        SgclConfig cfg = ScaledSgclConfig(kMoleculeFeatDim, scale);
        sweep.apply(&cfg, v);
        SgclTrainer trainer(cfg, seed);
        const auto pretrain = trainer.Pretrain(zinc);
        SGCL_CHECK(pretrain.ok());
        Rng rng(seed + 9);
        GnnEncoder encoder(trainer.model().encoder_k().config(), &rng);
        encoder.CopyParametersFrom(trainer.model().encoder_k());
        per_seed.push_back(FinetuneAndEvalRocAuc(
            &encoder, bbbp, split.train, split.test, ft, &rng));
      }
      std::printf("  %-8g -> %.2f\n", v,
                  100.0 * ComputeMeanStd(per_seed).mean);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("total time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
