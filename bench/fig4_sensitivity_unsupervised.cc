// Reproduces paper Figure 4: sensitivity of SGCL to lambda_c, lambda_W,
// rho, and tau in the unsupervised protocol, reported as the average
// accuracy over PROTEINS, DD and IMDB-B. Prints one series per
// hyperparameter (x value -> mean accuracy).
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "eval/evaluator.h"

using namespace sgcl;         // NOLINT
using namespace sgcl::bench;  // NOLINT

namespace {

struct Sweep {
  const char* name;
  std::vector<double> values;
  void (*apply)(SgclConfig*, double);
};

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string only;
  BenchScale scale = ParseArgs(argc, argv, &only);

  const std::vector<TuDataset> datasets = {
      TuDataset::kProteins, TuDataset::kDd, TuDataset::kImdbB};
  std::vector<GraphDataset> data;
  for (size_t d = 0; d < datasets.size(); ++d) {
    data.push_back(MakeTu(datasets[d], scale, /*seed=*/900 + d));
  }

  const std::vector<Sweep> sweeps = {
      {"lambda_c",
       {0.0001, 0.001, 0.005, 0.01, 0.05, 0.1},
       [](SgclConfig* c, double v) { c->lambda_c = static_cast<float>(v); }},
      {"lambda_W",
       {0.001, 0.01, 0.05, 0.1, 0.2, 0.5},
       [](SgclConfig* c, double v) { c->lambda_w = static_cast<float>(v); }},
      {"rho",
       {0.5, 0.6, 0.7, 0.8, 0.9},
       [](SgclConfig* c, double v) { c->rho = v; }},
      {"tau",
       {0.1, 0.2, 0.3, 0.4, 0.5},
       [](SgclConfig* c, double v) { c->tau = static_cast<float>(v); }},
  };

  UnsupervisedProtocolOptions proto;
  proto.num_seeds = scale.seeds;
  proto.cv_folds = scale.cv_folds;

  Stopwatch total;
  std::printf(
      "Figure 4 — SGCL hyperparameter sensitivity, unsupervised "
      "(avg accuracy %% over PROTEINS/DD/IMDB-B) [mode=%s]\n\n",
      scale.paper ? "paper" : "ci");
  for (const Sweep& sweep : sweeps) {
    if (!Selected(sweep.name, only)) continue;
    std::printf("%s:\n", sweep.name);
    for (double v : sweep.values) {
      double sum = 0.0;
      for (size_t d = 0; d < data.size(); ++d) {
        proto.base_seed = 100 * d;
        MeanStd acc = RunUnsupervisedProtocol(
            [&](uint64_t seed) -> std::unique_ptr<Pretrainer> {
              SgclConfig cfg =
                  ScaledSgclConfig(data[d].feat_dim(), scale);
              sweep.apply(&cfg, v);
              return std::make_unique<SgclPretrainer>(cfg, seed);
            },
            data[d], proto);
        sum += acc.mean;
      }
      std::printf("  %-8g -> %.2f\n", v,
                  100.0 * sum / static_cast<double>(data.size()));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("total time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
