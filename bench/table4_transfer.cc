// Reproduces paper Table IV: transfer learning ROC-AUC (%) on the eight
// MoleculeNet-like downstream tasks. Each method pretrains on the
// ZINC-like corpus, then its encoder is fine-tuned per task with a
// scaffold split.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "eval/evaluator.h"
#include "eval/finetune.h"
#include "eval/table.h"
#include "graph/splits.h"

using namespace sgcl;         // NOLINT
using namespace sgcl::bench;  // NOLINT

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string only;
  BenchScale scale = ParseArgs(argc, argv, &only);

  const std::vector<MolTask> tasks = AllMolTasks();
  std::vector<std::string> task_names;
  std::vector<GraphDataset> downstream;
  for (size_t t = 0; t < tasks.size(); ++t) {
    downstream.push_back(MakeMol(tasks[t], scale, /*seed=*/500 + t));
    task_names.push_back(downstream.back().name());
  }
  GraphDataset zinc = MakeZincLikeDataset(scale.zinc_graphs, /*seed=*/321);

  ResultTable table(task_names);
  Stopwatch total;
  FinetuneConfig ft;
  ft.epochs = scale.finetune_epochs;
  ft.batch_size = scale.batch_size;

  for (const std::string& method : TransferMethodNames()) {
    if (!Selected(method, only)) continue;
    std::vector<std::vector<double>> per_task(tasks.size());
    for (int s = 0; s < scale.seeds; ++s) {
      const uint64_t seed = 1000ULL * (s + 1);
      // Pretrain once per (method, seed); each task fine-tunes a fresh
      // copy of the pretrained encoder.
      std::unique_ptr<Pretrainer> pre =
          MakeMethod(method, kMoleculeFeatDim, scale, seed);
      pre->Pretrain(zinc, {});
      const GnnEncoder& pretrained = *pre->mutable_encoder();
      for (size_t t = 0; t < tasks.size(); ++t) {
        Rng rng(seed + 5 + 17 * t);
        GnnEncoder encoder(pretrained.config(), &rng);
        encoder.CopyParametersFrom(pretrained);
        ThreeWaySplit split = ScaffoldSplit(downstream[t], 0.7, 0.1);
        per_task[t].push_back(FinetuneAndEvalRocAuc(
            &encoder, downstream[t], split.train, split.test, ft, &rng));
      }
      std::fprintf(stderr, "[%6.1fs] %s seed %d done\n",
                   total.ElapsedSeconds(), method.c_str(), s);
    }
    std::vector<std::optional<MeanStd>> row(task_names.size());
    for (size_t t = 0; t < tasks.size(); ++t) {
      MeanStd auc = ComputeMeanStd(per_task[t]);
      row[t] = MeanStd{100.0 * auc.mean, 100.0 * auc.std};
    }
    table.AddRow(method, std::move(row));
  }

  std::printf(
      "Table IV — transfer learning ROC-AUC (%%) on downstream tasks "
      "[mode=%s, seeds=%d]\n\n%s\n",
      scale.paper ? "paper" : "ci", scale.seeds, table.ToString().c_str());
  std::printf("total time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
