// Reproduces paper Figure 7: contrastive-sample visualization on
// MNIST-superpixel-like digits 1, 2 and 6. For each digit we print the
// original intensity view, the per-node preservation probability of an
// RGCL-style learnable view generator, and SGCL's Lipschitz constants —
// plus a quantitative stroke-recovery AUC for both (how well each score
// ranks ground-truth stroke superpixels above background).
#include <algorithm>
#include <cstdio>
#include <memory>

#include "baselines/view_generator.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/sgcl_trainer.h"
#include "data/superpixel.h"
#include "eval/metrics.h"

using namespace sgcl;         // NOLINT
using namespace sgcl::bench;  // NOLINT

namespace {

char Shade(float x) {
  static const char kRamp[] = " .:-=+*#%@";
  return kRamp[std::clamp(static_cast<int>(x * 10.0f), 0, 9)];
}

void PrintGridRow(const std::vector<float>& values, int gy,
                  std::string* out) {
  const float mx = std::max(1e-9f,
                            *std::max_element(values.begin(), values.end()));
  for (int gx = 0; gx < kSuperpixelGrid; ++gx) {
    *out += Shade(values[gy * kSuperpixelGrid + gx] / mx);
    *out += ' ';
  }
}

double StrokeAuc(const std::vector<float>& scores, const Graph& g) {
  std::vector<double> s(scores.begin(), scores.end());
  std::vector<int> y(g.semantic_mask().begin(), g.semantic_mask().end());
  return RocAuc(s, y);
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string only;
  BenchScale scale = ParseArgs(argc, argv, &only);

  Stopwatch total;
  const int per_digit = scale.paper ? 40 : 12;
  GraphDataset digits = MakeSuperpixelDataset(per_digit, /*seed=*/77);

  // Train both methods on the same corpus.
  SgclConfig sgcl_cfg = ScaledSgclConfig(digits.feat_dim(), scale);
  sgcl_cfg.epochs = std::max(scale.pretrain_epochs, 20);
  // The superpixel graphs are small (49 nodes): use the exact masked
  // re-encoding generator, which visualizes the cleanest. The generator
  // tower's pooled contrastive term is disabled here: on single-channel
  // intensity graphs it concentrates K onto the few digit-*identity*
  // superpixels, whereas the visualization compares against the full
  // stroke mask — we want the pure Eq. 11 constants.
  sgcl_cfg.lipschitz_mode = LipschitzMode::kExact;
  sgcl_cfg.generator_loss_weight = 0.0f;
  SgclTrainer sgcl(sgcl_cfg, /*seed=*/3);
  const auto pretrain = sgcl.Pretrain(digits);
  SGCL_CHECK(pretrain.ok());

  BaselineConfig rgcl_cfg = ScaledBaselineConfig(digits.feat_dim(), scale, 3);
  rgcl_cfg.epochs = sgcl_cfg.epochs;
  LearnableViewBaseline rgcl(rgcl_cfg, ViewGenVariant::kRgcl);
  rgcl.Pretrain(digits, {});

  std::printf(
      "Figure 7 — per-node scores on MNIST-superpixel-like digits "
      "[mode=%s]\n(columns: intensity | RGCL keep prob | SGCL Lipschitz | "
      "ground truth)\n\n",
      scale.paper ? "paper" : "ci");

  double rgcl_auc_sum = 0.0, sgcl_auc_sum = 0.0;
  int count = 0;
  for (int digit : {1, 2, 6}) {
    // First sample of this digit.
    const Graph* g = nullptr;
    for (int64_t i = 0; i < digits.size(); ++i) {
      if (digits.graph(i).label() == digit) {
        g = &digits.graph(i);
        break;
      }
    }
    if (g == nullptr) continue;
    std::vector<float> intensity(g->num_nodes());
    for (int64_t v = 0; v < g->num_nodes(); ++v) {
      intensity[v] = g->feature(v, 0);
    }
    std::vector<float> rgcl_probs = rgcl.NodeKeepProbs(*g);
    std::vector<float> lipschitz = sgcl.model().NodeLipschitzConstants(*g);

    std::printf("digit %d:\n", digit);
    for (int gy = 0; gy < kSuperpixelGrid; ++gy) {
      std::string row;
      PrintGridRow(intensity, gy, &row);
      row += "  ";
      PrintGridRow(rgcl_probs, gy, &row);
      row += "  ";
      PrintGridRow(lipschitz, gy, &row);
      row += "  ";
      for (int gx = 0; gx < kSuperpixelGrid; ++gx) {
        row += g->semantic_mask()[gy * kSuperpixelGrid + gx] ? "# " : ". ";
      }
      std::printf("  %s\n", row.c_str());
    }
    const double ra = StrokeAuc(rgcl_probs, *g);
    const double sa = StrokeAuc(lipschitz, *g);
    std::printf("  stroke-recovery AUC: RGCL %.3f vs SGCL %.3f\n\n", ra, sa);
    rgcl_auc_sum += ra;
    sgcl_auc_sum += sa;
    ++count;
  }
  if (count > 0) {
    std::printf("mean stroke-recovery AUC: RGCL %.3f vs SGCL %.3f\n",
                rgcl_auc_sum / count, sgcl_auc_sum / count);
  }
  std::printf("total time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
