// Microbenchmarks for the paper's §V complexity analysis: the exact
// masked-re-encoding Lipschitz generator is O(|V|) encoder passes per
// graph, while the attention approximation is a single pass. Also times
// the Lipschitz graph augmentation and one full SGCL training step.
#include <benchmark/benchmark.h>

#include "core/augmentation.h"
#include "core/lipschitz_generator.h"
#include "core/sgcl_model.h"
#include "data/synthetic_tu.h"

namespace sgcl {
namespace {

Graph MakeBenchGraph(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Graph g(n, 8);
  for (int64_t v = 0; v < n; ++v) {
    g.set_feature(v, rng.UniformInt(8), 1.0f);
    if (v > 0) g.AddUndirectedEdge(v, rng.UniformInt(v));
  }
  // Extra edges to ~2x tree density.
  for (int64_t e = 0; e < n; ++e) {
    const int64_t a = rng.UniformInt(n), b = rng.UniformInt(n);
    if (a != b) g.AddUndirectedEdge(a, b);
  }
  return g;
}

EncoderConfig BenchEncoderConfig() {
  EncoderConfig cfg;
  cfg.arch = GnnArch::kGin;
  cfg.in_dim = 8;
  cfg.hidden_dim = 32;
  cfg.num_layers = 3;
  return cfg;
}

void BM_LipschitzExact(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  GnnEncoder encoder(BenchEncoderConfig(), &rng);
  LipschitzGenerator gen(&encoder, LipschitzMode::kExact);
  Graph g = MakeBenchGraph(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.ComputeConstants(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LipschitzExact)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity();

void BM_LipschitzApprox(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  GnnEncoder encoder(BenchEncoderConfig(), &rng);
  LipschitzGenerator gen(&encoder, LipschitzMode::kAttentionApprox);
  Graph g = MakeBenchGraph(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.ComputeConstants(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LipschitzApprox)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Complexity();

void BM_AugmentationPlan(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  std::vector<float> k(n), keep(n);
  for (int64_t v = 0; v < n; ++v) {
    k[v] = static_cast<float>(rng.Uniform());
    keep[v] = static_cast<float>(rng.Uniform());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildAugmentationPlan(
        k, keep, AugmentationMode::kLipschitz, 0.9, &rng));
  }
}
BENCHMARK(BM_AugmentationPlan)->Arg(32)->Arg(256)->Arg(2048);

void BM_SgclTrainingStep(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  SyntheticTuOptions opt;
  opt.graph_fraction = 0.05;
  opt.node_cap = 25;
  opt.seed = 4;
  GraphDataset ds = MakeTuDataset(TuDataset::kMutag, opt);
  SgclConfig cfg = MakeUnsupervisedConfig(ds.feat_dim());
  Rng rng(5);
  SgclModel model(cfg, &rng);
  std::vector<const Graph*> graphs;
  for (int i = 0; i < batch; ++i) {
    graphs.push_back(&ds.graph(i % ds.size()));
  }
  for (auto _ : state) {
    Tensor loss = model.ComputeLoss(graphs, &rng);
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
    for (Tensor& p : model.Parameters()) p.ZeroGrad();
  }
}
BENCHMARK(BM_SgclTrainingStep)->Arg(4)->Arg(16);

}  // namespace
}  // namespace sgcl

BENCHMARK_MAIN();
