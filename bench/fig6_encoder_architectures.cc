// Reproduces paper Figure 6: SGCL accuracy with different encoder
// architectures (GCN, GraphSAGE, GAT, GIN) on MUTAG, PROTEINS, DD and
// IMDB-B under the unsupervised protocol.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "eval/evaluator.h"
#include "eval/table.h"

using namespace sgcl;         // NOLINT
using namespace sgcl::bench;  // NOLINT

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string only;
  BenchScale scale = ParseArgs(argc, argv, &only);

  const std::vector<TuDataset> datasets = {
      TuDataset::kMutag, TuDataset::kProteins, TuDataset::kDd,
      TuDataset::kImdbB};
  std::vector<std::string> dataset_names;
  std::vector<GraphDataset> data;
  for (size_t d = 0; d < datasets.size(); ++d) {
    data.push_back(MakeTu(datasets[d], scale, /*seed=*/700 + d));
    dataset_names.push_back(data.back().name());
  }

  const std::vector<GnnArch> archs = {GnnArch::kGcn, GnnArch::kSage,
                                      GnnArch::kGat, GnnArch::kGin};

  UnsupervisedProtocolOptions proto;
  proto.num_seeds = scale.seeds;
  proto.cv_folds = scale.cv_folds;

  ResultTable table(dataset_names);
  Stopwatch total;
  for (GnnArch arch : archs) {
    const std::string arch_name = GnnArchToString(arch);
    if (!Selected(arch_name, only)) continue;
    std::vector<std::optional<MeanStd>> row;
    for (size_t d = 0; d < data.size(); ++d) {
      proto.base_seed = 50 * d;
      MeanStd acc = RunUnsupervisedProtocol(
          [&](uint64_t seed) -> std::unique_ptr<Pretrainer> {
            SgclConfig cfg = ScaledSgclConfig(data[d].feat_dim(), scale);
            cfg.encoder.arch = arch;
            return std::make_unique<SgclPretrainer>(cfg, seed);
          },
          data[d], proto);
      row.push_back(MeanStd{100.0 * acc.mean, 100.0 * acc.std});
      std::fprintf(stderr, "[%6.1fs] %s / %s = %.2f\n",
                   total.ElapsedSeconds(), arch_name.c_str(),
                   dataset_names[d].c_str(), 100.0 * acc.mean);
    }
    table.AddRow(arch_name, std::move(row));
  }

  std::printf(
      "Figure 6 — SGCL accuracy (%%) by encoder architecture "
      "[mode=%s, seeds=%d]\n\n%s\n",
      scale.paper ? "paper" : "ci", scale.seeds,
      table.ToString(/*with_ranks=*/false).c_str());
  std::printf("total time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
