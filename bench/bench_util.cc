#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "baselines/registry.h"

namespace sgcl::bench {

BenchScale ParseArgs(int argc, char** argv, std::string* only_filter) {
  BenchScale scale;
  only_filter->clear();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mode=paper") {
      scale.paper = true;
      scale.tu_target_graphs = 1 << 30;
      scale.tu_node_cap = 1e9;
      scale.zinc_graphs = 20000;
      scale.mol_graph_fraction = 1.0;
      scale.mol_max_graphs = 100000;
      scale.hidden_dim = 32;
      scale.num_layers = 3;
      scale.pretrain_epochs = 40;
      scale.finetune_epochs = 30;
      scale.batch_size = 128;
      scale.seeds = 5;
      scale.cv_folds = 10;
    } else if (arg == "--mode=ci") {
      // defaults
    } else if (arg.rfind("--seeds=", 0) == 0) {
      scale.seeds = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--only=", 0) == 0) {
      *only_filter = arg.substr(7);
    } else if (arg.rfind("--benchmark", 0) == 0) {
      // google-benchmark flags pass through
    } else {
      std::fprintf(stderr,
                   "unknown arg %s (use --mode=ci|paper --seeds=N "
                   "--only=SUBSTR)\n",
                   arg.c_str());
    }
  }
  return scale;
}

bool Selected(const std::string& name, const std::string& only_filter) {
  return only_filter.empty() || name.find(only_filter) != std::string::npos;
}

GraphDataset MakeTu(TuDataset which, const BenchScale& scale, uint64_t seed) {
  SyntheticTuOptions opt;
  const int paper_graphs = GetTuConfig(which).num_graphs;
  opt.graph_fraction = std::min(
      1.0, static_cast<double>(scale.tu_target_graphs) / paper_graphs);
  opt.node_cap = scale.tu_node_cap;
  opt.seed = seed;
  return MakeTuDataset(which, opt);
}

GraphDataset MakeMol(MolTask task, const BenchScale& scale, uint64_t seed) {
  MolDatasetOptions opt;
  opt.graph_fraction = scale.mol_graph_fraction;
  opt.max_graphs = scale.mol_max_graphs;
  opt.seed = seed;
  return MakeMolTaskDataset(task, opt);
}

SgclConfig ScaledSgclConfig(int64_t feat_dim, const BenchScale& scale) {
  SgclConfig cfg = MakeUnsupervisedConfig(feat_dim);
  cfg.encoder.hidden_dim = scale.hidden_dim;
  cfg.encoder.num_layers = scale.num_layers;
  cfg.proj_dim = scale.hidden_dim;
  cfg.epochs = scale.pretrain_epochs;
  cfg.batch_size = scale.batch_size;
  return cfg;
}

BaselineConfig ScaledBaselineConfig(int64_t feat_dim, const BenchScale& scale,
                                    uint64_t seed) {
  BaselineConfig cfg;
  cfg.encoder.arch = GnnArch::kGin;
  cfg.encoder.in_dim = feat_dim;
  cfg.encoder.hidden_dim = scale.hidden_dim;
  cfg.encoder.num_layers = scale.num_layers;
  cfg.epochs = scale.pretrain_epochs;
  cfg.batch_size = scale.batch_size;
  cfg.seed = seed;
  return cfg;
}

std::vector<std::string> UnsupervisedMethodNames() {
  return {"InfoGraph", "GraphCL", "JOAOv2", "AD-GCL",
          "SimGRACE",  "RGCL",    "AutoGCL", "SGCL"};
}

std::vector<std::string> TransferMethodNames() {
  return {"No Pre-Train", "AttrMasking", "ContextPred", "GraphCL", "JOAOv2",
          "AD-GCL",       "RGCL",        "AutoGCL",     "SGCL"};
}

std::unique_ptr<Pretrainer> MakeMethod(const std::string& name,
                                       int64_t feat_dim,
                                       const BenchScale& scale,
                                       uint64_t seed) {
  auto method = MakePretrainer(name, ScaledBaselineConfig(feat_dim, scale,
                                                          seed),
                               ScaledSgclConfig(feat_dim, scale), seed);
  SGCL_CHECK(method.ok());
  return std::move(*method);
}

}  // namespace sgcl::bench
