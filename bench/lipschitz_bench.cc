// Microbenchmark for the exact Lipschitz constant generator hot path:
// the seed's naive per-node re-encoding loop vs. the batched
// block-diagonal masked-view path vs. batched + shared-thread-pool
// parallel, on synthetic TU-style graphs of N in {16, 64, 256}.
//
// Unless --benchmark_out is given explicitly, results are written to
// BENCH_lipschitz.json (google-benchmark JSON) in the working directory:
//   ./build/bench/lipschitz_bench
// Compare `BM_LipschitzNaive/256` against `BM_LipschitzBatchedParallel/256`
// for the headline speedup (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/trace.h"
#include "core/lipschitz_generator.h"

namespace sgcl {
namespace {

// TU-style synthetic graph: random spanning tree plus ~n extra edges
// (~2x tree density), one-hot-ish features (same recipe as
// complexity_generator.cc).
Graph MakeBenchGraph(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Graph g(n, 8);
  for (int64_t v = 0; v < n; ++v) {
    g.set_feature(v, rng.UniformInt(8), 1.0f);
    if (v > 0) g.AddUndirectedEdge(v, rng.UniformInt(v));
  }
  for (int64_t e = 0; e < n; ++e) {
    const int64_t a = rng.UniformInt(n), b = rng.UniformInt(n);
    if (a != b) g.AddUndirectedEdge(a, b);
  }
  return g;
}

EncoderConfig BenchEncoderConfig() {
  EncoderConfig cfg;
  cfg.arch = GnnArch::kGin;
  cfg.in_dim = 8;
  cfg.hidden_dim = 32;
  cfg.num_layers = 3;
  return cfg;
}

// The seed implementation: one encoder pass per node, single-threaded.
void BM_LipschitzNaive(benchmark::State& state) {
  SetParallelThreads(1);
  const int64_t n = state.range(0);
  Rng rng(1);
  GnnEncoder encoder(BenchEncoderConfig(), &rng);
  LipschitzGenerator gen(&encoder, LipschitzMode::kExact);
  Graph g = MakeBenchGraph(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.ExactConstantsReference(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LipschitzNaive)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Block-diagonal masked-view batching, still on one thread.
void BM_LipschitzBatched(benchmark::State& state) {
  SetParallelThreads(1);
  const int64_t n = state.range(0);
  Rng rng(1);
  GnnEncoder encoder(BenchEncoderConfig(), &rng);
  LipschitzGenerator gen(&encoder, LipschitzMode::kExact);
  Graph g = MakeBenchGraph(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.ComputeConstants(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LipschitzBatched)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Batching plus the shared thread pool (SGCL_NUM_THREADS / hardware).
void BM_LipschitzBatchedParallel(benchmark::State& state) {
  SetParallelThreads(0);
  const int64_t n = state.range(0);
  Rng rng(1);
  GnnEncoder encoder(BenchEncoderConfig(), &rng);
  LipschitzGenerator gen(&encoder, LipschitzMode::kExact);
  Graph g = MakeBenchGraph(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.ComputeConstants(g));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_LipschitzBatchedParallel)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Batched path with tracing enabled: quantifies the observability
// overhead (span records + metrics counters on every stage). The
// acceptance budget is < 3% over BM_LipschitzBatchedParallel at N=256;
// compare the two in BENCH_lipschitz.json.
void BM_LipschitzBatchedParallelTraced(benchmark::State& state) {
  SetParallelThreads(0);
  const int64_t n = state.range(0);
  Rng rng(1);
  GnnEncoder encoder(BenchEncoderConfig(), &rng);
  LipschitzGenerator gen(&encoder, LipschitzMode::kExact);
  Graph g = MakeBenchGraph(n, 2);
  TraceCollector::Global().Enable(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.ComputeConstants(g));
    // Bound the collector's memory; outside the timed region.
    state.PauseTiming();
    TraceCollector::Global().Clear();
    state.ResumeTiming();
  }
  TraceCollector::Global().Enable(false);
  TraceCollector::Global().Clear();
  state.SetComplexityN(n);
}
BENCHMARK(BM_LipschitzBatchedParallelTraced)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Batch-of-graphs path: the per-epoch shape SgclModel::ComputeLoss hits
// (ComputeConstants over a 16-graph minibatch), parallel across graphs.
void BM_LipschitzMinibatchParallel(benchmark::State& state) {
  SetParallelThreads(0);
  const int64_t n = state.range(0);
  Rng rng(1);
  GnnEncoder encoder(BenchEncoderConfig(), &rng);
  LipschitzGenerator gen(&encoder, LipschitzMode::kExact);
  std::vector<Graph> graphs;
  std::vector<const Graph*> ptrs;
  for (uint64_t i = 0; i < 16; ++i) graphs.push_back(MakeBenchGraph(n, 2 + i));
  for (const Graph& g : graphs) ptrs.push_back(&g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.ComputeConstants(ptrs));
  }
}
BENCHMARK(BM_LipschitzMinibatchParallel)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sgcl

int main(int argc, char** argv) {
  // Default to emitting BENCH_lipschitz.json unless the caller passed an
  // explicit --benchmark_out.
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_lipschitz.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
