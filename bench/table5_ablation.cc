// Reproduces paper Table V: ablation study of SGCL on four transfer
// tasks (BBBP, TOX21, TOXCAST, SIDER). Variants:
//   SGCL w/o VG   — random node dropping instead of the view generator
//   SGCL w/o LGA  — learnable view generator without Lipschitz constants
//   SGCL w/o SRL  — no Lipschitz-weighted anchor pooling (Eq. 21)
//   SGCL w/o Lc   — no complement loss (lambda_c = 0)
//   SGCL w/o LW   — no weight regularizer (lambda_W = 0)
//   SGCL (full)
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "eval/finetune.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "graph/splits.h"

using namespace sgcl;         // NOLINT
using namespace sgcl::bench;  // NOLINT

namespace {

SgclConfig VariantConfig(const std::string& variant, int64_t feat_dim,
                         const BenchScale& scale) {
  SgclConfig cfg = ScaledSgclConfig(feat_dim, scale);
  if (variant == "SGCL w/o VG") {
    cfg.augmentation = AugmentationMode::kRandom;
  } else if (variant == "SGCL w/o LGA") {
    cfg.augmentation = AugmentationMode::kLearnableOnly;
  } else if (variant == "SGCL w/o SRL") {
    cfg.semantic_pooling = false;
  } else if (variant == "SGCL w/o Lc") {
    cfg.lambda_c = 0.0f;
  } else if (variant == "SGCL w/o LW") {
    cfg.lambda_w = 0.0f;
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string only;
  BenchScale scale = ParseArgs(argc, argv, &only);

  const std::vector<MolTask> tasks = {MolTask::kBbbp, MolTask::kTox21,
                                      MolTask::kToxcast, MolTask::kSider};
  std::vector<std::string> task_names;
  std::vector<GraphDataset> downstream;
  for (size_t t = 0; t < tasks.size(); ++t) {
    downstream.push_back(MakeMol(tasks[t], scale, /*seed=*/500 + t));
    task_names.push_back(downstream.back().name());
  }
  GraphDataset zinc = MakeZincLikeDataset(scale.zinc_graphs, /*seed=*/321);

  const std::vector<std::string> variants = {
      "SGCL w/o VG", "SGCL w/o LGA", "SGCL w/o SRL",
      "SGCL w/o Lc", "SGCL w/o LW",  "SGCL"};

  ResultTable table(task_names);
  Stopwatch total;
  FinetuneConfig ft;
  ft.epochs = scale.finetune_epochs;
  ft.batch_size = scale.batch_size;

  for (const std::string& variant : variants) {
    if (!Selected(variant, only)) continue;
    std::vector<std::vector<double>> per_task(tasks.size());
    for (int s = 0; s < scale.seeds; ++s) {
      const uint64_t seed = 2000ULL * (s + 1);
      SgclTrainer trainer(VariantConfig(variant, kMoleculeFeatDim, scale),
                          seed);
      const auto pretrain = trainer.Pretrain(zinc);
      SGCL_CHECK(pretrain.ok());
      const GnnEncoder& pretrained = trainer.model().encoder_k();
      for (size_t t = 0; t < tasks.size(); ++t) {
        Rng rng(seed + 31 * t);
        GnnEncoder encoder(pretrained.config(), &rng);
        encoder.CopyParametersFrom(pretrained);
        ThreeWaySplit split = ScaffoldSplit(downstream[t], 0.7, 0.1);
        per_task[t].push_back(FinetuneAndEvalRocAuc(
            &encoder, downstream[t], split.train, split.test, ft, &rng));
      }
      std::fprintf(stderr, "[%6.1fs] %s seed %d done\n",
                   total.ElapsedSeconds(), variant.c_str(), s);
    }
    std::vector<std::optional<MeanStd>> row(task_names.size());
    for (size_t t = 0; t < tasks.size(); ++t) {
      MeanStd auc = ComputeMeanStd(per_task[t]);
      row[t] = MeanStd{100.0 * auc.mean, 100.0 * auc.std};
    }
    table.AddRow(variant, std::move(row));
  }

  std::printf(
      "Table V — SGCL ablation ROC-AUC (%%) on transfer tasks "
      "[mode=%s, seeds=%d]\n\n%s\n",
      scale.paper ? "paper" : "ci", scale.seeds,
      table.ToString(/*with_ranks=*/false).c_str());
  std::printf("total time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
