// Reproduces paper Table VI: semi-supervised accuracy (%) at 1% / 10%
// label rates on NCI1 and COLLAB. Each method pretrains unsupervised on
// the full dataset, then fine-tunes with the reduced labeled subset.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "eval/finetune.h"
#include "eval/metrics.h"
#include "eval/table.h"
#include "graph/splits.h"

using namespace sgcl;         // NOLINT
using namespace sgcl::bench;  // NOLINT

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string only;
  BenchScale scale = ParseArgs(argc, argv, &only);

  const std::vector<TuDataset> datasets = {TuDataset::kNci1,
                                           TuDataset::kCollab};
  const std::vector<double> label_rates = {0.01, 0.10};
  // Column layout follows the paper: NCI1(1%), COLLAB(1%), NCI1(10%),
  // COLLAB(10%).
  std::vector<std::string> columns;
  std::vector<GraphDataset> data;
  for (double rate : label_rates) {
    for (TuDataset d : datasets) {
      TuConfig cfg = GetTuConfig(d);
      columns.push_back(cfg.name + "(" + std::to_string(int(rate * 100)) +
                        "%)");
    }
  }
  for (TuDataset d : datasets) {
    data.push_back(MakeTu(d, scale, /*seed=*/800 + static_cast<int>(d)));
  }

  const std::vector<std::string> methods = {
      "No Pre-Train", "GAE",     "Infomax", "GraphCL",
      "JOAOv2",       "SimGRACE", "AutoGCL", "SGCL"};

  ResultTable table(columns);
  Stopwatch total;
  FinetuneConfig ft;
  ft.epochs = scale.finetune_epochs;
  ft.batch_size = scale.batch_size;

  for (const std::string& method : methods) {
    if (!Selected(method, only)) continue;
    // results[rate][dataset] accumulated over seeds.
    std::vector<std::vector<std::vector<double>>> results(
        label_rates.size(),
        std::vector<std::vector<double>>(datasets.size()));
    for (size_t d = 0; d < datasets.size(); ++d) {
      const GraphDataset& ds = data[d];
      for (int s = 0; s < scale.seeds; ++s) {
        const uint64_t seed = 3000ULL * (s + 1) + 41 * d;
        std::unique_ptr<Pretrainer> pre =
            MakeMethod(method, ds.feat_dim(), scale, seed);
        pre->Pretrain(ds, {});
        const GnnEncoder& pretrained = *pre->mutable_encoder();
        for (size_t r = 0; r < label_rates.size(); ++r) {
          Rng rng(seed + 7 * r);
          // Held-out test fold, label-rate-limited training subset.
          HoldoutSplit holdout = TrainTestSplit(ds.size(), 0.2, &rng);
          std::vector<int> train_labels;
          for (int64_t i : holdout.train) {
            train_labels.push_back(ds.graph(i).label());
          }
          std::vector<int64_t> subset_local =
              LabelRateSubset(train_labels, label_rates[r], &rng);
          std::vector<int64_t> train;
          for (int64_t j : subset_local) train.push_back(holdout.train[j]);
          GnnEncoder encoder(pretrained.config(), &rng);
          encoder.CopyParametersFrom(pretrained);
          results[r][d].push_back(FinetuneAndEvalAccuracy(
              &encoder, ds, train, holdout.test, ft, &rng));
        }
      }
      std::fprintf(stderr, "[%6.1fs] %s / %s done\n", total.ElapsedSeconds(),
                   method.c_str(), ds.name().c_str());
    }
    std::vector<std::optional<MeanStd>> row;
    for (size_t r = 0; r < label_rates.size(); ++r) {
      for (size_t d = 0; d < datasets.size(); ++d) {
        MeanStd acc = ComputeMeanStd(results[r][d]);
        row.push_back(MeanStd{100.0 * acc.mean, 100.0 * acc.std});
      }
    }
    table.AddRow(method, std::move(row));
  }

  std::printf(
      "Table VI — semi-supervised accuracy (%%) at 1%% / 10%% label rate "
      "[mode=%s, seeds=%d]\n\n%s\n",
      scale.paper ? "paper" : "ci", scale.seeds,
      table.ToString(/*with_ranks=*/false).c_str());
  std::printf("total time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
