// Shared infrastructure for the experiment harnesses in bench/.
//
// Every table/figure binary supports:
//   --mode=ci     scaled-down sizes that finish on a single core (default)
//   --mode=paper  the paper's full protocol sizes
//   --seeds=N     override the seed count
//   --only=SUBSTR run only datasets/methods whose name contains SUBSTR
#ifndef SGCL_BENCH_BENCH_UTIL_H_
#define SGCL_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/pretrainer.h"
#include "core/sgcl_model.h"
#include "data/synthetic_molecule.h"
#include "data/synthetic_tu.h"

namespace sgcl::bench {

struct BenchScale {
  bool paper = false;
  // TU data. CI mode clamps every dataset to ~tu_target_graphs so the
  // per-cell cost is uniform; paper mode uses the full counts.
  int tu_target_graphs = 120;
  double tu_node_cap = 22.0;
  // Molecule data.
  int zinc_graphs = 350;
  double mol_graph_fraction = 0.15;
  int mol_max_graphs = 300;
  // Model / training.
  int64_t hidden_dim = 32;
  int num_layers = 3;
  int pretrain_epochs = 12;
  int finetune_epochs = 8;
  int batch_size = 16;
  // Protocol.
  int seeds = 2;
  int cv_folds = 5;
};

// Parses --mode/--seeds/--only; returns the scale and sets `only_filter`.
BenchScale ParseArgs(int argc, char** argv, std::string* only_filter);

// True when `name` passes the --only filter (case-sensitive substring).
bool Selected(const std::string& name, const std::string& only_filter);

// TU dataset scaled for the bench mode.
GraphDataset MakeTu(TuDataset which, const BenchScale& scale, uint64_t seed);

// MoleculeNet-like task dataset scaled for the bench mode.
GraphDataset MakeMol(MolTask task, const BenchScale& scale, uint64_t seed);

// SGCL config matching the scale (unsupervised protocol defaults).
SgclConfig ScaledSgclConfig(int64_t feat_dim, const BenchScale& scale);

// Baseline config matching the scale.
BaselineConfig ScaledBaselineConfig(int64_t feat_dim,
                                    const BenchScale& scale, uint64_t seed);

// The self-supervised method rows of Table III, in paper order:
// InfoGraph, GraphCL, JOAOv2, AD-GCL, SimGRACE, RGCL, AutoGCL, SGCL.
std::vector<std::string> UnsupervisedMethodNames();

// The rows of Table IV: No Pre-Train, AttrMasking, ContextPred, GraphCL,
// JOAOv2, AD-GCL, RGCL, AutoGCL, SGCL.
std::vector<std::string> TransferMethodNames();

// Builds a pretrainer by method name (any name from the two lists above).
std::unique_ptr<Pretrainer> MakeMethod(const std::string& name,
                                       int64_t feat_dim,
                                       const BenchScale& scale,
                                       uint64_t seed);

}  // namespace sgcl::bench

#endif  // SGCL_BENCH_BENCH_UTIL_H_
