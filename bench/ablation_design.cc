// Design-choice ablations beyond the paper's Table V (DESIGN.md §2):
//  * exact vs. attention-approximate Lipschitz generator — downstream
//    accuracy and agreement between the two scoring modes;
//  * pooling choice (sum / mean / max) for the SGCL encoder.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <numeric>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "eval/evaluator.h"

using namespace sgcl;         // NOLINT
using namespace sgcl::bench;  // NOLINT

namespace {

double Pearson(const std::vector<float>& a, const std::vector<float>& b) {
  const double n = static_cast<double>(a.size());
  double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double num = 0.0, va = 0.0, vb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  return num / std::max(std::sqrt(va * vb), 1e-12);
}

}  // namespace

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string only;
  BenchScale scale = ParseArgs(argc, argv, &only);
  Stopwatch total;

  GraphDataset mutag = MakeTu(TuDataset::kMutag, scale, /*seed=*/600);
  UnsupervisedProtocolOptions proto;
  proto.num_seeds = scale.seeds;
  proto.cv_folds = scale.cv_folds;

  // --- Exact vs. approximate generator: downstream accuracy. ---
  if (Selected("generator", only)) {
    std::printf("Generator mode ablation (MUTAG accuracy %%):\n");
    for (LipschitzMode mode :
         {LipschitzMode::kExact, LipschitzMode::kAttentionApprox}) {
      MeanStd acc = RunUnsupervisedProtocol(
          [&](uint64_t seed) -> std::unique_ptr<Pretrainer> {
            SgclConfig cfg = ScaledSgclConfig(mutag.feat_dim(), scale);
            cfg.lipschitz_mode = mode;
            return std::make_unique<SgclPretrainer>(cfg, seed);
          },
          mutag, proto);
      std::printf("  %-18s %.2f ± %.2f\n",
                  mode == LipschitzMode::kExact ? "exact" : "attention-approx",
                  100.0 * acc.mean, 100.0 * acc.std);
    }
    // Score agreement on a trained model.
    SgclConfig cfg = ScaledSgclConfig(mutag.feat_dim(), scale);
    SgclTrainer trainer(cfg, 1);
    const auto pretrain = trainer.Pretrain(mutag);
    SGCL_CHECK(pretrain.ok());
    LipschitzGenerator exact(&trainer.model().encoder_q(),
                             LipschitzMode::kExact);
    LipschitzGenerator approx(&trainer.model().encoder_q(),
                              LipschitzMode::kAttentionApprox);
    std::vector<float> ke, ka;
    for (int i = 0; i < std::min<int64_t>(15, mutag.size()); ++i) {
      auto e = exact.ComputeConstants(mutag.graph(i));
      auto a = approx.ComputeConstants(mutag.graph(i));
      ke.insert(ke.end(), e.begin(), e.end());
      ka.insert(ka.end(), a.begin(), a.end());
    }
    std::printf("  exact/approx score correlation: %.3f\n\n", Pearson(ke, ka));
  }

  // --- Pooling choice. ---
  if (Selected("pooling", only)) {
    std::printf("Pooling ablation (MUTAG accuracy %%):\n");
    for (PoolingKind pooling :
         {PoolingKind::kSum, PoolingKind::kMean, PoolingKind::kMax}) {
      MeanStd acc = RunUnsupervisedProtocol(
          [&](uint64_t seed) -> std::unique_ptr<Pretrainer> {
            SgclConfig cfg = ScaledSgclConfig(mutag.feat_dim(), scale);
            cfg.encoder.pooling = pooling;
            return std::make_unique<SgclPretrainer>(cfg, seed);
          },
          mutag, proto);
      std::printf("  %-5s %.2f ± %.2f\n", PoolingKindToString(pooling),
                  100.0 * acc.mean, 100.0 * acc.std);
    }
  }

  std::printf("total time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
