// Reproduces paper Table III: unsupervised graph classification accuracy
// (%) on the eight TU datasets for graph kernels (GL, WL, DGK) and the
// eight self-supervised methods, plus the average-rank column.
#include <cstdio>
#include <memory>

#include "baselines/graph_kernels.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "eval/evaluator.h"
#include "eval/table.h"

using namespace sgcl;         // NOLINT
using namespace sgcl::bench;  // NOLINT

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kWarning);
  std::string only;
  BenchScale scale = ParseArgs(argc, argv, &only);

  const std::vector<TuDataset> datasets = AllTuDatasets();
  std::vector<std::string> dataset_names;
  for (TuDataset d : datasets) dataset_names.push_back(GetTuConfig(d).name);

  ResultTable table(dataset_names);
  Stopwatch total;

  UnsupervisedProtocolOptions proto;
  proto.num_seeds = scale.seeds;
  proto.cv_folds = scale.cv_folds;

  // --- Graph-kernel rows. ---
  for (KernelKind kind :
       {KernelKind::kGraphlet, KernelKind::kWlSubtree, KernelKind::kDeepWl}) {
    GraphKernel kernel(kind);
    if (!Selected(kernel.name(), only)) continue;
    std::vector<std::optional<MeanStd>> row;
    for (size_t d = 0; d < datasets.size(); ++d) {
      GraphDataset ds = MakeTu(datasets[d], scale, /*seed=*/100 + d);
      std::vector<const Graph*> graphs;
      for (int64_t i = 0; i < ds.size(); ++i) graphs.push_back(&ds.graph(i));
      std::vector<double> gram = kernel.GramMatrix(graphs);
      proto.base_seed = 10 * d;
      MeanStd acc = RunKernelProtocol(gram, ds, proto);
      row.push_back(MeanStd{100.0 * acc.mean, 100.0 * acc.std});
      std::fprintf(stderr, "[%6.1fs] %s / %s = %.2f\n",
                   total.ElapsedSeconds(), kernel.name().c_str(),
                   dataset_names[d].c_str(), 100.0 * acc.mean);
    }
    table.AddRow(kernel.name(), std::move(row));
  }

  // --- Self-supervised rows. ---
  for (const std::string& method : UnsupervisedMethodNames()) {
    if (!Selected(method, only)) continue;
    std::vector<std::optional<MeanStd>> row;
    for (size_t d = 0; d < datasets.size(); ++d) {
      GraphDataset ds = MakeTu(datasets[d], scale, /*seed=*/100 + d);
      proto.base_seed = 10 * d;
      MeanStd acc = RunUnsupervisedProtocol(
          [&](uint64_t seed) {
            return MakeMethod(method, ds.feat_dim(), scale, seed);
          },
          ds, proto);
      row.push_back(MeanStd{100.0 * acc.mean, 100.0 * acc.std});
      std::fprintf(stderr, "[%6.1fs] %s / %s = %.2f\n",
                   total.ElapsedSeconds(), method.c_str(),
                   dataset_names[d].c_str(), 100.0 * acc.mean);
    }
    table.AddRow(method, std::move(row));
  }

  std::printf(
      "Table III — unsupervised graph classification accuracy (%%) "
      "[mode=%s, seeds=%d]\n\n%s\n",
      scale.paper ? "paper" : "ci", scale.seeds,
      table.ToString().c_str());
  std::printf("total time: %.1fs\n", total.ElapsedSeconds());
  return 0;
}
